// Malleable parameter-sweep application (§5.1.2): growth, graceful drains,
// forced kills and waste accounting.
#include <gtest/gtest.h>

#include "coorm/exp/scenario.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

PsaApp::Config psaConfig(Time dtask = sec(600)) {
  PsaApp::Config config;
  config.cluster = kC;
  config.taskDuration = dtask;
  return config;
}

TEST(PsaApp, FillsIdleMachine) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp& psa = sc.addPsa(psaConfig());
  sc.runFor(sec(30));
  EXPECT_EQ(psa.heldNodes(), 10);
}

TEST(PsaApp, CompletesTasksOverTime) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp& psa = sc.addPsa(psaConfig(sec(100)));
  sc.runFor(sec(1000) + sec(30));
  // ~10 nodes * ~9-10 completed generations.
  EXPECT_GE(psa.tasksCompleted(), 80u);
  EXPECT_EQ(psa.wasteNodeSeconds(), 0.0);
  EXPECT_NEAR(psa.completedNodeSeconds(),
              static_cast<double>(psa.tasksCompleted()) * 100.0, 1e-6);
}

TEST(PsaApp, SpontaneousYankKillsTasksAndCountsWaste) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp& psa = sc.addPsa(psaConfig(sec(600)));
  sc.runFor(sec(50));
  ASSERT_EQ(psa.heldNodes(), 10);

  // A rigid NP request arrives: the RMS needs 6 nodes *now*.
  sc.addRigid({kC, 6, sec(100)});
  sc.runFor(sec(20));
  EXPECT_EQ(psa.heldNodes(), 4);
  EXPECT_GE(psa.tasksKilled(), 6u);
  // Killed tasks had run for ~50-70 s each.
  EXPECT_GT(psa.wasteNodeSeconds(), 6 * 40.0);
  EXPECT_LT(psa.wasteNodeSeconds(), 6 * 80.0);
}

TEST(PsaApp, DoesNotTakeNodesWithTooShortAWindow) {
  // 8 nodes are available only until t=301 (a fully-predictable app grows
  // then): a PSA with 600 s tasks must not grab them — the window does not
  // fit a single task (§4: "it can request fewer nodes, leaving the other
  // to be filled by another application").
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  sc.addPredictable({kC, {{2, sec(300)}, {10, sec(600)}}});
  PsaApp& psa = sc.addPsa(psaConfig(sec(600)));
  sc.runFor(sec(30));
  EXPECT_EQ(psa.heldNodes(), 0);
  sc.runFor(sec(400));
  EXPECT_EQ(psa.tasksKilled(), 0u);
  EXPECT_EQ(psa.wasteNodeSeconds(), 0.0);
}

TEST(PsaApp, TakeOnlyUsableCanBeDisabled) {
  // Same setup, but a greedy PSA grabs the short-window nodes and pays for
  // it: its tasks are killed when the predictable app grows.
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  sc.addPredictable({kC, {{2, sec(300)}, {10, sec(600)}}});
  PsaApp::Config config = psaConfig(sec(600));
  config.takeOnlyUsable = false;
  PsaApp& psa = sc.addPsa(config);
  sc.runFor(sec(30));
  EXPECT_EQ(psa.heldNodes(), 8);
  sc.runFor(sec(400));
  EXPECT_GE(psa.tasksKilled(), 8u);
  EXPECT_GT(psa.wasteNodeSeconds(), 0.0);
}

TEST(PsaApp, MaxNodesCapRespected) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp::Config config = psaConfig();
  config.maxNodes = 3;
  PsaApp& psa = sc.addPsa(config);
  sc.runFor(sec(30));
  EXPECT_EQ(psa.heldNodes(), 3);
}

TEST(PsaApp, GracefulDrainWhenDropIsAnnounced) {
  // A fully-predictable application declares up front that it will grow
  // from 2 to 10 nodes at t=650: the PSA's 8 extra nodes have a 650 s
  // window. One 600 s task fits on each; the nodes are released at task
  // completion — no kills, no waste.
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  sc.addPredictable({kC, {{2, sec(650)}, {10, sec(600)}}});
  PsaApp& psa = sc.addPsa(psaConfig(sec(600)));
  sc.runFor(sec(60));
  ASSERT_EQ(psa.heldNodes(), 8);
  sc.runFor(sec(640));  // to t=700, past the announced growth
  EXPECT_EQ(psa.heldNodes(), 0);
  EXPECT_EQ(psa.tasksKilled(), 0u);
  EXPECT_EQ(psa.wasteNodeSeconds(), 0.0);
  EXPECT_GE(psa.tasksCompleted(), 8u);
}

TEST(PsaApp, TwoPsasSplitTheMachine) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp& a = sc.addPsa(psaConfig(sec(600)), "psa1");
  PsaApp& b = sc.addPsa(psaConfig(sec(60)), "psa2");
  sc.runFor(sec(60));
  EXPECT_LE(a.heldNodes() + b.heldNodes(), 10);
  EXPECT_GE(a.heldNodes(), 5);
  EXPECT_GE(b.heldNodes(), 5);
}

TEST(PsaApp, SecondPsaFillsWhatFirstLeaves) {
  // First PSA capped at 2 nodes: with filling, the second PSA takes 8.
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp::Config capped = psaConfig(sec(600));
  capped.maxNodes = 2;
  PsaApp& small = sc.addPsa(capped, "small");
  PsaApp& big = sc.addPsa(psaConfig(sec(60)), "big");
  sc.runFor(sec(60));
  EXPECT_EQ(small.heldNodes(), 2);
  EXPECT_EQ(big.heldNodes(), 8);
}

TEST(PsaApp, StrictEquiPartitionPreventsFilling) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  cfg.server.strictEquiPartition = true;
  Scenario sc(cfg);
  PsaApp::Config capped = psaConfig(sec(600));
  capped.maxNodes = 2;
  PsaApp& small = sc.addPsa(capped, "small");
  PsaApp& big = sc.addPsa(psaConfig(sec(60)), "big");
  sc.runFor(sec(60));
  EXPECT_EQ(small.heldNodes(), 2);
  EXPECT_EQ(big.heldNodes(), 5);  // stuck at its strict half
}

TEST(PsaApp, MinNodesBasePartIsNonPreemptible) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  PsaApp::Config config = psaConfig(sec(100));
  config.minNodes = 3;
  config.minPartDuration = sec(5000);
  PsaApp& psa = sc.addPsa(config);
  sc.runFor(sec(30));
  EXPECT_EQ(psa.heldNodes(), 10);  // 3 guaranteed + 7 preemptible
  // A rigid job takes everything preemptible, but the base part survives.
  sc.addRigid({kC, 7, sec(100)});
  sc.runFor(sec(20));
  EXPECT_EQ(psa.heldNodes(), 3);
}

TEST(PsaApp, VictimPolicyLeastElapsedWastesLessThanMostElapsed) {
  auto runWithPolicy = [](PsaApp::VictimPolicy policy) {
    ScenarioConfig cfg;
    cfg.nodes = 10;
    Scenario sc(cfg);
    PsaApp::Config config;
    config.cluster = kC;
    config.taskDuration = sec(600);
    config.victimPolicy = policy;
    PsaApp& psa = sc.addPsa(config);
    // Stagger task starts by yanking a node early: add rigid load later.
    sc.runFor(sec(400));
    sc.addRigid({kC, 5, sec(100)});
    sc.runFor(sec(50));
    return psa.wasteNodeSeconds();
  };
  // All tasks started together here, so both policies kill same-age tasks;
  // least-elapsed must never waste more.
  EXPECT_LE(runWithPolicy(PsaApp::VictimPolicy::kLeastElapsed),
            runWithPolicy(PsaApp::VictimPolicy::kMostElapsed) + 1e-6);
}

}  // namespace
}  // namespace coorm

// Runtime metrics (common/metrics.hpp): catalogue sanity, exactness under
// concurrent increments (run in the TSan CI job), and the STATS admin
// round trip over loopback TCP — a scripted daemon exchange whose wire
// counters are pinned to exact values.
#include "coorm/common/metrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "coorm/net/client.hpp"
#include "coorm/net/poll_executor.hpp"
#include "net_harness.hpp"

namespace coorm {
namespace {

using metrics::Event;
using metrics::Gauge;

TEST(MetricsCatalogue, NamesAreUniqueSnakeCase) {
  std::set<std::string> seen;
  const auto check = [&](std::string_view name) {
    EXPECT_FALSE(name.empty());
    for (const char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '_')
          << name;
    }
    EXPECT_TRUE(seen.insert(std::string(name)).second)
        << "duplicate name " << name;
  };
  for (std::size_t i = 0; i < metrics::kEventCount; ++i) {
    check(metrics::name(static_cast<Event>(i)));
  }
  for (std::size_t i = 0; i < metrics::kGaugeCount; ++i) {
    check(metrics::name(static_cast<Gauge>(i)));
  }
}

TEST(MetricsCounters, IncrementAddValueAndReset) {
  metrics::reset();
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 0u);
  metrics::increment(Event::kSweepSegmentsMerged);
  metrics::increment(Event::kSweepSegmentsMerged, 41);
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 42u);

  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 0);
  metrics::add(Gauge::kLiveSessions, 3);
  metrics::add(Gauge::kLiveSessions, -1);
  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 2);

  metrics::reset();
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 0u);
  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 0);
}

TEST(MetricsCounters, SnapshotIndexesAndCompares) {
  metrics::reset();
  metrics::increment(Event::kFramesEncoded, 7);
  metrics::add(Gauge::kArenaBytesHeld, 1024);
  const metrics::Snapshot a = metrics::snapshot();
  EXPECT_EQ(a[Event::kFramesEncoded], 7u);
  EXPECT_EQ(a[Gauge::kArenaBytesHeld], 1024);
  EXPECT_EQ(a, metrics::snapshot());
  metrics::increment(Event::kFramesEncoded);
  EXPECT_NE(a, metrics::snapshot());
  metrics::reset();
}

// The whole point of relaxed atomics: concurrent increments lose nothing.
// The TSan CI job runs this test to pin that the counters are race-free.
TEST(MetricsCounters, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  const std::uint64_t eventsBefore = metrics::value(Event::kArenaHits);
  const std::int64_t gaugeBefore = metrics::value(Gauge::kPassInFlight);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics::increment(Event::kArenaHits);
        metrics::add(Gauge::kPassInFlight, 1);
        metrics::add(Gauge::kPassInFlight, -1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(metrics::value(Event::kArenaHits),
            eventsBefore + std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(metrics::value(Gauge::kPassInFlight), gaugeBefore);
}

// ---------------------------------------------------------------------------
// STATS over loopback TCP against a coorm_rmsd-shaped daemon.

/// Server config that keeps the resched timer out of the way so the only
/// traffic during the scripted exchange is the traffic the script sends.
Server::Config quietConfig() {
  Server::Config config;
  config.reschedInterval = hours(1);
  return config;
}

/// Polls the daemon through repeated STATS round trips until `pred` holds
/// on a reply (events the daemon processes asynchronously — GOODBYE,
/// EOF — land shortly after the triggering close).
template <typename Pred>
std::optional<metrics::Snapshot> pollStats(net::RmsClient& client,
                                           Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<metrics::Snapshot> reply = client.stats();
    if (!reply.has_value()) return std::nullopt;
    if (pred(*reply)) return reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return std::nullopt;
}

struct NullEndpoint final : AppEndpoint {
  void onViews(const View&, const View&) override {}
  void onStarted(RequestId, const std::vector<NodeId>&) override {}
  void onExpired(RequestId) override {}
  void onEnded(RequestId) override {}
  void onKilled() override {}
};

TEST(MetricsLoopback, StatsReplyPinsExactWireCounters) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();  // daemon is up and idle; the script owns every frame

  net::PollExecutor executor;
  net::RmsClient client(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  client.dial();
  const std::optional<metrics::Snapshot> reply = client.stats();
  ASSERT_TRUE(reply.has_value());

  // At the instant the daemon snapshotted: exactly one frame each way —
  // our STATS encoded (client side) and decoded (daemon side). The reply
  // frame is encoded after the snapshot, so it is not in these numbers.
  EXPECT_EQ((*reply)[Event::kFramesEncoded], 1u);
  EXPECT_EQ((*reply)[Event::kFramesDecoded], 1u);
  EXPECT_GT((*reply)[Event::kWireBytesOut], 0u);
  EXPECT_EQ((*reply)[Event::kWireBytesIn], (*reply)[Event::kWireBytesOut]);
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 0u);
  EXPECT_EQ((*reply)[Event::kBackpressureStalls], 0u);
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);  // dial() opens no session

  // Daemon and test share one process, so the daemon's STATS reply must
  // agree with the in-process counters once the reply's own frame is
  // added: one more encode (daemon) and one more decode (client).
  const metrics::Snapshot local = metrics::snapshot();
  EXPECT_EQ(local[Event::kFramesEncoded], 2u);
  EXPECT_EQ(local[Event::kFramesDecoded], 2u);
  EXPECT_EQ(local[Event::kWireBytesIn], local[Event::kWireBytesOut]);

  client.disconnect();
}

TEST(MetricsLoopback, SessionsAndCleanGoodbyesAreNotDeadPeers) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();

  net::PollExecutor executor;
  NullEndpoint endpoint;
  net::RmsClient app(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "app"});
  app.connect(endpoint);  // HELLO/WELCOME: a session now exists

  net::RmsClient statsq(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  std::optional<metrics::Snapshot> reply = statsq.stats();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 1);

  app.disconnect();  // clean GOODBYE
  reply = pollStats(statsq, [](const metrics::Snapshot& snap) {
    return snap[Gauge::kLiveSessions] == 0;
  });
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 0u);  // GOODBYE is not a drop

  statsq.disconnect();
}

TEST(MetricsLoopback, AbruptCloseCountsAsDeadPeer) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();

  // A peer that connects and vanishes without a GOODBYE.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);

  net::PollExecutor executor;
  net::RmsClient statsq(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  const std::optional<metrics::Snapshot> reply =
      pollStats(statsq, [](const metrics::Snapshot& snap) {
        return snap[Event::kDeadPeerDrops] >= 1;
      });
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 1u);
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);

  statsq.disconnect();
}

// ---------------------------------------------------------------------------
// C100k serving-path counters: delta pushes, write coalescing, epoll.

/// One worker whose two short requests force several view-changing passes:
/// push 1 is necessarily full; once its ack lands, later pushes go out as
/// VIEWS_DELTA diffs, and each grant commit (STARTED + views in one pass)
/// exercises the per-session write coalescer.
struct ChurnScenario {
  nettest::ScriptApp worker;
  nettest::Scenario scenario;

  void wire(nettest::Transport& transport) {
    worker.onFirstViews = [this] {
      RequestSpec first;
      first.nodes = 8;
      first.duration = msec(300);
      worker.submit(first);
      RequestSpec second;
      second.nodes = 4;
      second.duration = msec(600);
      worker.submit(second);
    };
    scenario.steps = {
        {[] { return true; },
         [this, &transport] { worker.bind(transport.add(worker, "worker")); }},
    };
    scenario.finished = [this] {
      return worker.startedCount >= 2 && worker.viewsCount >= 3;
    };
  }
};

TEST(MetricsLoopback, DeltaCoalescingAndEpollCountersEngage) {
  Server::Config config;
  config.reschedInterval = msec(100);
  nettest::DaemonFixture daemon(config, 64, IoBackend::kEpoll);
  metrics::reset();

  ChurnScenario churn;
  auto executor = net::makeIoExecutor(IoBackend::kEpoll);
  nettest::LoopbackTransport loopback(*executor, daemon.port());
  churn.wire(loopback);
  ASSERT_TRUE(nettest::runLoopback(*executor, churn.scenario))
      << "churn scenario did not finish";

  // Assert through STATS — the same export an operator's `coorm_rmsd
  // --stats` reads — so the new counters are pinned end to end.
  net::PollExecutor statsLoop;
  net::RmsClient statsq(
      statsLoop,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  const std::optional<metrics::Snapshot> reply =
      pollStats(statsq, [](const metrics::Snapshot& snap) {
        return snap[Event::kViewsDeltaSent] >= 1 &&
               snap[Event::kFramesCoalesced] >= 1;
      });
  ASSERT_TRUE(reply.has_value())
      << "delta/coalescing counters never engaged: delta="
      << metrics::value(Event::kViewsDeltaSent)
      << " coalesced=" << metrics::value(Event::kFramesCoalesced);
  EXPECT_GE((*reply)[Event::kViewsDeltaSent], 1u);
  EXPECT_GE((*reply)[Event::kFramesCoalesced], 1u);
  EXPECT_EQ((*reply)[Event::kViewsResync], 0u);  // loopback never desyncs
  EXPECT_GT((*reply)[Event::kEpollWakeups], 0u);
  statsq.disconnect();
}

/// Speaks raw protocol v3 against the daemon: after the initial full push,
/// a VIEWS_ACK carrying kResync must bump views_resync and produce another
/// full (not delta) push with the next sequence number.
TEST(MetricsLoopback, ResyncAckForcesFullRepushAndCounts) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{5, 0};
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                         sizeof(timeout)),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);

  net::FrameBuffer frames;
  const auto nextFrameOfType = [&](net::MsgType want,
                                   net::FrameView& frame) -> bool {
    while (true) {
      net::FrameBuffer::Next next;
      while ((next = frames.next(frame)) == net::FrameBuffer::Next::kFrame) {
        if (frame.type == want) return true;
      }
      if (next == net::FrameBuffer::Next::kBad) return false;
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      frames.append({chunk, static_cast<std::size_t>(n)});
    }
  };
  const auto sendAll = [&](const std::vector<std::uint8_t>& bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  };

  std::vector<std::uint8_t> out;
  net::encode(out, net::HelloMsg{"raw-v3"});
  sendAll(out);

  net::FrameView frame;
  ASSERT_TRUE(nextFrameOfType(net::MsgType::kViewsDelta, frame));
  net::ViewsDeltaMsg push;
  ASSERT_TRUE(net::decode(frame.payload, push));
  EXPECT_TRUE(push.full);  // a new session always starts from a sync point

  out.clear();
  net::encode(out, net::ViewsAckMsg{push.seq,
                                    net::ViewsAckMsg::Status::kResync});
  sendAll(out);

  ASSERT_TRUE(nextFrameOfType(net::MsgType::kViewsDelta, frame));
  net::ViewsDeltaMsg repush;
  ASSERT_TRUE(net::decode(frame.payload, repush));
  EXPECT_TRUE(repush.full);  // resync is answered with a full push
  EXPECT_EQ(repush.seq, push.seq + 1);
  EXPECT_EQ(repush.nonPreemptive, push.nonPreemptive);
  EXPECT_EQ(repush.preemptive, push.preemptive);
  EXPECT_GE(metrics::value(Event::kViewsResync), 1u);

  out.clear();
  net::encode(out, net::GoodbyeMsg{});
  sendAll(out);
  ::close(fd);
}

}  // namespace
}  // namespace coorm

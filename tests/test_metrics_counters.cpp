// Runtime metrics (common/metrics.hpp): catalogue sanity, exactness under
// concurrent increments (run in the TSan CI job), and the STATS admin
// round trip over loopback TCP — a scripted daemon exchange whose wire
// counters are pinned to exact values.
#include "coorm/common/metrics.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "coorm/net/client.hpp"
#include "coorm/net/poll_executor.hpp"
#include "net_harness.hpp"

namespace coorm {
namespace {

using metrics::Event;
using metrics::Gauge;

TEST(MetricsCatalogue, NamesAreUniqueSnakeCase) {
  std::set<std::string> seen;
  const auto check = [&](std::string_view name) {
    EXPECT_FALSE(name.empty());
    for (const char c : name) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c)) ||
                  std::isdigit(static_cast<unsigned char>(c)) || c == '_')
          << name;
    }
    EXPECT_TRUE(seen.insert(std::string(name)).second)
        << "duplicate name " << name;
  };
  for (std::size_t i = 0; i < metrics::kEventCount; ++i) {
    check(metrics::name(static_cast<Event>(i)));
  }
  for (std::size_t i = 0; i < metrics::kGaugeCount; ++i) {
    check(metrics::name(static_cast<Gauge>(i)));
  }
}

TEST(MetricsCounters, IncrementAddValueAndReset) {
  metrics::reset();
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 0u);
  metrics::increment(Event::kSweepSegmentsMerged);
  metrics::increment(Event::kSweepSegmentsMerged, 41);
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 42u);

  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 0);
  metrics::add(Gauge::kLiveSessions, 3);
  metrics::add(Gauge::kLiveSessions, -1);
  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 2);

  metrics::reset();
  EXPECT_EQ(metrics::value(Event::kSweepSegmentsMerged), 0u);
  EXPECT_EQ(metrics::value(Gauge::kLiveSessions), 0);
}

TEST(MetricsCounters, SnapshotIndexesAndCompares) {
  metrics::reset();
  metrics::increment(Event::kFramesEncoded, 7);
  metrics::add(Gauge::kArenaBytesHeld, 1024);
  const metrics::Snapshot a = metrics::snapshot();
  EXPECT_EQ(a[Event::kFramesEncoded], 7u);
  EXPECT_EQ(a[Gauge::kArenaBytesHeld], 1024);
  EXPECT_EQ(a, metrics::snapshot());
  metrics::increment(Event::kFramesEncoded);
  EXPECT_NE(a, metrics::snapshot());
  metrics::reset();
}

// The whole point of relaxed atomics: concurrent increments lose nothing.
// The TSan CI job runs this test to pin that the counters are race-free.
TEST(MetricsCounters, ConcurrentIncrementsAreExact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  const std::uint64_t eventsBefore = metrics::value(Event::kArenaHits);
  const std::int64_t gaugeBefore = metrics::value(Gauge::kPassInFlight);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        metrics::increment(Event::kArenaHits);
        metrics::add(Gauge::kPassInFlight, 1);
        metrics::add(Gauge::kPassInFlight, -1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(metrics::value(Event::kArenaHits),
            eventsBefore + std::uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(metrics::value(Gauge::kPassInFlight), gaugeBefore);
}

// ---------------------------------------------------------------------------
// STATS over loopback TCP against a coorm_rmsd-shaped daemon.

/// Server config that keeps the resched timer out of the way so the only
/// traffic during the scripted exchange is the traffic the script sends.
Server::Config quietConfig() {
  Server::Config config;
  config.reschedInterval = hours(1);
  return config;
}

/// Polls the daemon through repeated STATS round trips until `pred` holds
/// on a reply (events the daemon processes asynchronously — GOODBYE,
/// EOF — land shortly after the triggering close).
template <typename Pred>
std::optional<metrics::Snapshot> pollStats(net::RmsClient& client,
                                           Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    std::optional<metrics::Snapshot> reply = client.stats();
    if (!reply.has_value()) return std::nullopt;
    if (pred(*reply)) return reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return std::nullopt;
}

struct NullEndpoint final : AppEndpoint {
  void onViews(const View&, const View&) override {}
  void onStarted(RequestId, const std::vector<NodeId>&) override {}
  void onExpired(RequestId) override {}
  void onEnded(RequestId) override {}
  void onKilled() override {}
};

TEST(MetricsLoopback, StatsReplyPinsExactWireCounters) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();  // daemon is up and idle; the script owns every frame

  net::PollExecutor executor;
  net::RmsClient client(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  client.dial();
  const std::optional<metrics::Snapshot> reply = client.stats();
  ASSERT_TRUE(reply.has_value());

  // At the instant the daemon snapshotted: exactly one frame each way —
  // our STATS encoded (client side) and decoded (daemon side). The reply
  // frame is encoded after the snapshot, so it is not in these numbers.
  EXPECT_EQ((*reply)[Event::kFramesEncoded], 1u);
  EXPECT_EQ((*reply)[Event::kFramesDecoded], 1u);
  EXPECT_GT((*reply)[Event::kWireBytesOut], 0u);
  EXPECT_EQ((*reply)[Event::kWireBytesIn], (*reply)[Event::kWireBytesOut]);
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 0u);
  EXPECT_EQ((*reply)[Event::kBackpressureStalls], 0u);
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);  // dial() opens no session

  // Daemon and test share one process, so the daemon's STATS reply must
  // agree with the in-process counters once the reply's own frame is
  // added: one more encode (daemon) and one more decode (client).
  const metrics::Snapshot local = metrics::snapshot();
  EXPECT_EQ(local[Event::kFramesEncoded], 2u);
  EXPECT_EQ(local[Event::kFramesDecoded], 2u);
  EXPECT_EQ(local[Event::kWireBytesIn], local[Event::kWireBytesOut]);

  client.disconnect();
}

TEST(MetricsLoopback, SessionsAndCleanGoodbyesAreNotDeadPeers) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();

  net::PollExecutor executor;
  NullEndpoint endpoint;
  net::RmsClient app(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "app"});
  app.connect(endpoint);  // HELLO/WELCOME: a session now exists

  net::RmsClient statsq(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  std::optional<metrics::Snapshot> reply = statsq.stats();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 1);

  app.disconnect();  // clean GOODBYE
  reply = pollStats(statsq, [](const metrics::Snapshot& snap) {
    return snap[Gauge::kLiveSessions] == 0;
  });
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 0u);  // GOODBYE is not a drop

  statsq.disconnect();
}

TEST(MetricsLoopback, AbruptCloseCountsAsDeadPeer) {
  nettest::DaemonFixture daemon(quietConfig(), 64);
  metrics::reset();

  // A peer that connects and vanishes without a GOODBYE.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ::close(fd);

  net::PollExecutor executor;
  net::RmsClient statsq(
      executor,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  const std::optional<metrics::Snapshot> reply =
      pollStats(statsq, [](const metrics::Snapshot& snap) {
        return snap[Event::kDeadPeerDrops] >= 1;
      });
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ((*reply)[Event::kDeadPeerDrops], 1u);
  EXPECT_EQ((*reply)[Gauge::kLiveSessions], 0);

  statsq.disconnect();
}

}  // namespace
}  // namespace coorm

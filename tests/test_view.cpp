#include "coorm/profile/view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coorm/common/rng.hpp"

namespace coorm {
namespace {

const ClusterId kA{0};
const ClusterId kB{1};

TEST(View, MissingClusterIsZeroProfile) {
  const View v;
  EXPECT_TRUE(v.cap(kA).isZero());
  EXPECT_EQ(v.at(kA, sec(100)), 0);
}

TEST(View, SetAndReadBack) {
  View v;
  v.setCap(kA, StepFunction::constant(4));
  EXPECT_EQ(v.at(kA, 0), 4);
  EXPECT_EQ(v.at(kB, 0), 0);
  EXPECT_EQ(v.clusters().size(), 1u);
}

TEST(View, CapRefInsertsZero) {
  View v;
  StepFunction& f = v.capRef(kB);
  EXPECT_TRUE(f.isZero());
  f = StepFunction::constant(2);
  EXPECT_EQ(v.at(kB, sec(5)), 2);
}

TEST(View, AdditionAcrossClusters) {
  View a;
  a.setCap(kA, StepFunction::constant(3));
  View b;
  b.setCap(kA, StepFunction::constant(1));
  b.setCap(kB, StepFunction::constant(2));
  const View sum = a + b;
  EXPECT_EQ(sum.at(kA, 0), 4);
  EXPECT_EQ(sum.at(kB, 0), 2);
}

TEST(View, Subtraction) {
  View a;
  a.setCap(kA, StepFunction::constant(5));
  View b;
  b.setCap(kA, StepFunction::pulse(sec(1), sec(2), 3));
  const View diff = a - b;
  EXPECT_EQ(diff.at(kA, 0), 5);
  EXPECT_EQ(diff.at(kA, sec(1)), 2);
  EXPECT_EQ(diff.at(kA, sec(3)), 5);
}

TEST(View, UnionMaxMatchesPaperUnionOperator) {
  View a;
  a.setCap(kA, StepFunction::pulse(0, sec(10), 4));
  View b;
  b.setCap(kA, StepFunction::pulse(sec(5), sec(10), 6));
  a.unionMax(b);
  EXPECT_EQ(a.at(kA, sec(1)), 4);
  EXPECT_EQ(a.at(kA, sec(7)), 6);
  EXPECT_EQ(a.at(kA, sec(12)), 6);
}

TEST(View, ClampMin) {
  View a;
  a.setCap(kA, StepFunction::constant(1) - StepFunction::constant(3));
  a.clampMin(0);
  EXPECT_EQ(a.at(kA, 0), 0);
}

TEST(View, AllocLimitedByAvailabilityAndWant) {
  View v;
  v.setCap(kA, StepFunction::fromSegments({{0, 10}, {sec(5), 3}}));
  // Window entirely in the 10-node region.
  EXPECT_EQ(v.alloc(kA, 0, sec(5), 6), 6);
  // Window crossing into the 3-node region: limited to 3.
  EXPECT_EQ(v.alloc(kA, sec(2), sec(10), 6), 3);
  // Wanting less than available.
  EXPECT_EQ(v.alloc(kA, sec(6), sec(2), 2), 2);
}

TEST(View, AllocEdgeCases) {
  View v;
  v.setCap(kA, StepFunction::constant(5));
  EXPECT_EQ(v.alloc(kA, 0, sec(1), 0), 0);
  EXPECT_EQ(v.alloc(kA, 0, 0, 5), 0);
  EXPECT_EQ(v.alloc(kA, kTimeInf, sec(1), 5), 0);
  // Negative availability clamps to 0.
  View neg;
  neg.setCap(kA, StepFunction::constant(-2));
  EXPECT_EQ(neg.alloc(kA, 0, sec(1), 5), 0);
}

TEST(View, FindHoleDelegatesToProfile) {
  View v;
  v.setCap(kA, StepFunction::constant(4) -
                   StepFunction::pulse(0, sec(30), 4));
  EXPECT_EQ(v.findHole(kA, 2, sec(10), 0), sec(30));
  EXPECT_EQ(v.findHole(kA, 5, sec(10), 0), kTimeInf);
  EXPECT_EQ(v.findHole(kB, 1, sec(1), 0), kTimeInf);  // unknown cluster
}

TEST(View, IntegralSumsClusters) {
  View v;
  v.setCap(kA, StepFunction::constant(2));
  v.setCap(kB, StepFunction::constant(3));
  EXPECT_DOUBLE_EQ(v.integralNodeSeconds(0, sec(10)), 50.0);
}

TEST(View, SameAsTreatsMissingAsZero) {
  View a;
  a.setCap(kA, StepFunction::constant(1));
  a.setCap(kB, StepFunction{});  // explicit zero
  View b;
  b.setCap(kA, StepFunction::constant(1));
  EXPECT_TRUE(a.sameAs(b));
  EXPECT_TRUE(b.sameAs(a));

  b.setCap(kB, StepFunction::constant(1));
  EXPECT_FALSE(a.sameAs(b));
}

TEST(View, ToStringMentionsClusters) {
  View v;
  v.setCap(kA, StepFunction::constant(2));
  EXPECT_NE(v.toString().find("cluster0"), std::string::npos);
}

TEST(View, ClusterIdHelpers) {
  View v;
  v.setCap(kB, StepFunction::constant(1));
  v.setCap(kA, StepFunction::constant(2));
  std::vector<ClusterId> ids{kB};
  v.appendClusterIds(ids);
  EXPECT_EQ(ids.size(), 3u);
  View::sortUniqueClusterIds(ids);
  EXPECT_EQ(ids, (std::vector<ClusterId>{kA, kB}));
}

// --- accumulate ≡ fold of the binary operators ------------------------------

View randomView(Rng& rng, int maxClusters = 3) {
  View v;
  const int nclusters = static_cast<int>(rng.uniformInt(0, maxClusters));
  for (int c = 0; c < nclusters; ++c) {
    if (rng.uniformInt(0, 3) == 0) continue;  // leave some clusters unset
    StepFunction f;
    const int pulses = static_cast<int>(rng.uniformInt(0, 4));
    for (int p = 0; p < pulses; ++p) {
      const Time duration =
          rng.uniformInt(0, 4) == 0 ? kTimeInf : sec(rng.uniformInt(1, 40));
      // Negative pulses exercise the clamp paths.
      f += StepFunction::pulse(sec(rng.uniformInt(0, 80)), duration,
                               rng.uniformInt(-6, 12));
    }
    v.setCap(ClusterId{c}, std::move(f));
  }
  return v;
}

TEST(View, AccumulateMatchesBinaryFoldRandomized) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    const View base = randomView(rng);
    std::vector<View> operands;
    const int n = static_cast<int>(rng.uniformInt(0, 4));
    for (int i = 0; i < n; ++i) operands.push_back(randomView(rng));
    std::vector<const View*> ptrs;
    for (const View& op : operands) ptrs.push_back(&op);

    // Independent pointwise oracle: the fold operators are themselves
    // built on accumulate now, so also check sampled values computed from
    // at() alone.
    std::vector<Time> samples{0, 1};
    for (int i = 0; i < 12; ++i) samples.push_back(sec(rng.uniformInt(0, 150)));

    for (const bool clamp : {false, true}) {
      View viaAdd = base;
      viaAdd.accumulate(ptrs, View::Op::kAdd, clamp);
      View foldAdd = base;
      for (const View& op : operands) foldAdd += op;
      if (clamp) foldAdd.clampMin(0);
      EXPECT_TRUE(viaAdd.sameAs(foldAdd))
          << "kAdd clamp=" << clamp << " seed=" << seed << "\n"
          << viaAdd.toString() << "\nvs\n"
          << foldAdd.toString();
      for (int c = 0; c < 4; ++c) {
        const ClusterId cid{c};
        for (const Time t : samples) {
          NodeCount expectSum = base.at(cid, t);
          for (const View& op : operands) expectSum += op.at(cid, t);
          if (clamp) expectSum = std::max<NodeCount>(expectSum, 0);
          EXPECT_EQ(viaAdd.at(cid, t), expectSum)
              << "kAdd pointwise seed=" << seed << " c=" << c << " t=" << t;
        }
      }

      View viaSub = base;
      viaSub.accumulate(ptrs, View::Op::kSubtract, clamp);
      View foldSub = base;
      for (const View& op : operands) foldSub -= op;
      if (clamp) foldSub.clampMin(0);
      EXPECT_TRUE(viaSub.sameAs(foldSub))
          << "kSubtract clamp=" << clamp << " seed=" << seed;

      View viaMax = base;
      viaMax.accumulate(ptrs, View::Op::kMax, clamp);
      View foldMax = base;
      for (const View& op : operands) foldMax.unionMax(op);
      if (clamp) foldMax.clampMin(0);
      EXPECT_TRUE(viaMax.sameAs(foldMax))
          << "kMax clamp=" << clamp << " seed=" << seed;

      for (int c = 0; c < 4; ++c) {
        const ClusterId cid{c};
        for (const Time t : samples) {
          NodeCount expectSub = base.at(cid, t);
          // View::at treats absent clusters as zero, matching accumulate's
          // zero-profile contract, so this oracle is independent of the
          // view operators under test.
          NodeCount expectMax = base.at(cid, t);
          for (const View& op : operands) {
            expectSub -= op.at(cid, t);
            expectMax = std::max(expectMax, op.at(cid, t));
          }
          if (clamp) {
            expectSub = std::max<NodeCount>(expectSub, 0);
            expectMax = std::max<NodeCount>(expectMax, 0);
          }
          EXPECT_EQ(viaSub.at(cid, t), expectSub)
              << "kSubtract pointwise seed=" << seed << " c=" << c
              << " t=" << t;
          EXPECT_EQ(viaMax.at(cid, t), expectMax)
              << "kMax pointwise seed=" << seed << " c=" << c << " t=" << t;
        }
      }
    }
  }
}

TEST(View, AccumulateSmallOperandAgainstLargeBase) {
  // Forces the pulse-splice fast path (operand segments × 8 <= base
  // segments) and checks it against the plain fold.
  Rng rng(7);
  View base;
  StepFunction dense;
  for (int p = 0; p < 24; ++p) {
    dense += StepFunction::pulse(sec(rng.uniformInt(0, 400)),
                                 sec(rng.uniformInt(1, 30)),
                                 rng.uniformInt(1, 9));
  }
  base.setCap(kA, std::move(dense));

  View small;
  small.setCap(kA, StepFunction::pulse(sec(35), sec(200), 5));
  const View* ptrs[] = {&small};

  for (const auto op : {View::Op::kAdd, View::Op::kSubtract}) {
    for (const bool clamp : {false, true}) {
      View via = base;
      via.accumulate(ptrs, op, clamp);
      View fold = base;
      if (op == View::Op::kAdd) {
        fold += small;
      } else {
        fold -= small;
      }
      if (clamp) fold.clampMin(0);
      EXPECT_TRUE(via.sameAs(fold)) << "op=" << static_cast<int>(op)
                                    << " clamp=" << clamp;
    }
  }
}

}  // namespace
}  // namespace coorm

#include "coorm/profile/view.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

const ClusterId kA{0};
const ClusterId kB{1};

TEST(View, MissingClusterIsZeroProfile) {
  const View v;
  EXPECT_TRUE(v.cap(kA).isZero());
  EXPECT_EQ(v.at(kA, sec(100)), 0);
}

TEST(View, SetAndReadBack) {
  View v;
  v.setCap(kA, StepFunction::constant(4));
  EXPECT_EQ(v.at(kA, 0), 4);
  EXPECT_EQ(v.at(kB, 0), 0);
  EXPECT_EQ(v.clusters().size(), 1u);
}

TEST(View, CapRefInsertsZero) {
  View v;
  StepFunction& f = v.capRef(kB);
  EXPECT_TRUE(f.isZero());
  f = StepFunction::constant(2);
  EXPECT_EQ(v.at(kB, sec(5)), 2);
}

TEST(View, AdditionAcrossClusters) {
  View a;
  a.setCap(kA, StepFunction::constant(3));
  View b;
  b.setCap(kA, StepFunction::constant(1));
  b.setCap(kB, StepFunction::constant(2));
  const View sum = a + b;
  EXPECT_EQ(sum.at(kA, 0), 4);
  EXPECT_EQ(sum.at(kB, 0), 2);
}

TEST(View, Subtraction) {
  View a;
  a.setCap(kA, StepFunction::constant(5));
  View b;
  b.setCap(kA, StepFunction::pulse(sec(1), sec(2), 3));
  const View diff = a - b;
  EXPECT_EQ(diff.at(kA, 0), 5);
  EXPECT_EQ(diff.at(kA, sec(1)), 2);
  EXPECT_EQ(diff.at(kA, sec(3)), 5);
}

TEST(View, UnionMaxMatchesPaperUnionOperator) {
  View a;
  a.setCap(kA, StepFunction::pulse(0, sec(10), 4));
  View b;
  b.setCap(kA, StepFunction::pulse(sec(5), sec(10), 6));
  a.unionMax(b);
  EXPECT_EQ(a.at(kA, sec(1)), 4);
  EXPECT_EQ(a.at(kA, sec(7)), 6);
  EXPECT_EQ(a.at(kA, sec(12)), 6);
}

TEST(View, ClampMin) {
  View a;
  a.setCap(kA, StepFunction::constant(1) - StepFunction::constant(3));
  a.clampMin(0);
  EXPECT_EQ(a.at(kA, 0), 0);
}

TEST(View, AllocLimitedByAvailabilityAndWant) {
  View v;
  v.setCap(kA, StepFunction::fromSegments({{0, 10}, {sec(5), 3}}));
  // Window entirely in the 10-node region.
  EXPECT_EQ(v.alloc(kA, 0, sec(5), 6), 6);
  // Window crossing into the 3-node region: limited to 3.
  EXPECT_EQ(v.alloc(kA, sec(2), sec(10), 6), 3);
  // Wanting less than available.
  EXPECT_EQ(v.alloc(kA, sec(6), sec(2), 2), 2);
}

TEST(View, AllocEdgeCases) {
  View v;
  v.setCap(kA, StepFunction::constant(5));
  EXPECT_EQ(v.alloc(kA, 0, sec(1), 0), 0);
  EXPECT_EQ(v.alloc(kA, 0, 0, 5), 0);
  EXPECT_EQ(v.alloc(kA, kTimeInf, sec(1), 5), 0);
  // Negative availability clamps to 0.
  View neg;
  neg.setCap(kA, StepFunction::constant(-2));
  EXPECT_EQ(neg.alloc(kA, 0, sec(1), 5), 0);
}

TEST(View, FindHoleDelegatesToProfile) {
  View v;
  v.setCap(kA, StepFunction::constant(4) -
                   StepFunction::pulse(0, sec(30), 4));
  EXPECT_EQ(v.findHole(kA, 2, sec(10), 0), sec(30));
  EXPECT_EQ(v.findHole(kA, 5, sec(10), 0), kTimeInf);
  EXPECT_EQ(v.findHole(kB, 1, sec(1), 0), kTimeInf);  // unknown cluster
}

TEST(View, IntegralSumsClusters) {
  View v;
  v.setCap(kA, StepFunction::constant(2));
  v.setCap(kB, StepFunction::constant(3));
  EXPECT_DOUBLE_EQ(v.integralNodeSeconds(0, sec(10)), 50.0);
}

TEST(View, SameAsTreatsMissingAsZero) {
  View a;
  a.setCap(kA, StepFunction::constant(1));
  a.setCap(kB, StepFunction{});  // explicit zero
  View b;
  b.setCap(kA, StepFunction::constant(1));
  EXPECT_TRUE(a.sameAs(b));
  EXPECT_TRUE(b.sameAs(a));

  b.setCap(kB, StepFunction::constant(1));
  EXPECT_FALSE(a.sameAs(b));
}

TEST(View, ToStringMentionsClusters) {
  View v;
  v.setCap(kA, StepFunction::constant(2));
  EXPECT_NE(v.toString().find("cluster0"), std::string::npos);
}

}  // namespace
}  // namespace coorm

#include "coorm/common/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace coorm {
namespace {

TEST(Ids, DefaultIsInvalid) {
  EXPECT_FALSE(AppId{}.valid());
  EXPECT_FALSE(RequestId{}.valid());
  EXPECT_FALSE(ClusterId{}.valid());
  EXPECT_FALSE(NodeId{}.valid());
}

TEST(Ids, ExplicitValuesAreValid) {
  EXPECT_TRUE(AppId{0}.valid());
  EXPECT_TRUE(RequestId{17}.valid());
  EXPECT_TRUE((NodeId{ClusterId{0}, 3}).valid());
}

TEST(Ids, Ordering) {
  EXPECT_LT(AppId{1}, AppId{2});
  EXPECT_EQ(RequestId{5}, RequestId{5});
  EXPECT_LT((NodeId{ClusterId{0}, 9}), (NodeId{ClusterId{1}, 0}));
  EXPECT_LT((NodeId{ClusterId{0}, 1}), (NodeId{ClusterId{0}, 2}));
}

TEST(Ids, Hashable) {
  std::unordered_set<RequestId> requests{RequestId{1}, RequestId{2},
                                         RequestId{1}};
  EXPECT_EQ(requests.size(), 2u);

  std::unordered_set<NodeId> nodes;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) nodes.insert(NodeId{ClusterId{c}, i});
  }
  EXPECT_EQ(nodes.size(), 300u);
}

TEST(Ids, ToString) {
  EXPECT_EQ(toString(AppId{3}), "app3");
  EXPECT_EQ(toString(RequestId{7}), "req7");
  EXPECT_EQ(toString(NodeId{ClusterId{1}, 4}), "cluster1/node4");
}

}  // namespace
}  // namespace coorm

#include "coorm/common/rng.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniformInt(0, 1'000'000), b.uniformInt(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniformInt(0, 1'000'000) != b.uniformInt(0, 1'000'000)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto value = rng.uniformInt(1, 200);
    EXPECT_GE(value, 1);
    EXPECT_LE(value, 200);
  }
}

TEST(Rng, UniformRealWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniformReal(-0.1, 0.1);
    EXPECT_GE(value, -0.1);
    EXPECT_LT(value, 0.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sumSq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian(0.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / kN;
  const double variance = sumSq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.2);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.uniformInt(0, 1'000'000) == childB.uniformInt(0, 1'000'000)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(9);
  Rng b(9);
  Rng ca = a.fork();
  Rng cb = b.fork();
  EXPECT_EQ(ca.uniformInt(0, 1 << 30), cb.uniformInt(0, 1 << 30));
}

}  // namespace
}  // namespace coorm

// Regression tests for protocol-liveness bugs: stale constraint targets,
// walltime exhaustion, and the pending-grow deadlock.
#include <gtest/gtest.h>

#include "coorm/exp/scenario.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

TEST(ServerRobustness, UnknownConstraintTargetIsRejectedNotFatal) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  Scenario sc(cfg);
  RigidApp& rigid = sc.addRigid({kC, 2, sec(30)});
  sc.runFor(sec(5));

  // Forge a request against a non-existent target through the session of a
  // live app: the server must reject it (invalid id), not abort.
  class Probe : public Application {
   public:
    using Application::Application;
    RequestId probe() {
      RequestSpec spec;
      spec.cluster = kC;
      spec.nodes = 1;
      spec.duration = sec(10);
      spec.type = RequestType::kNonPreemptible;
      spec.relatedHow = Relation::kNext;
      spec.relatedTo = RequestId{999999};
      return session().request(spec);
    }
  };
  Probe probe(sc.engine(), "probe");
  probe.connectTo(sc.server());
  sc.runFor(sec(2));
  EXPECT_FALSE(probe.probe().valid());
  sc.runFor(sec(60));
  EXPECT_TRUE(rigid.finished());  // the rest of the system is unaffected
}

TEST(ServerRobustness, AmrAbortsCleanlyWhenWalltimeExpires) {
  ScenarioConfig cfg;
  cfg.nodes = 64;
  Scenario sc(cfg);
  AmrApp::Config amrCfg;
  amrCfg.cluster = kC;
  // A working set that needs far longer than the walltime permits.
  amrCfg.sizesMiB = std::vector<double>(500, 50000.0);
  amrCfg.preallocNodes = 8;
  amrCfg.walltime = minutes(10);
  AmrApp& amr = sc.addAmr(amrCfg);
  sc.runUntilFinished(amr, hours(10));
  EXPECT_FALSE(amr.finished());
  EXPECT_TRUE(amr.aborted());
  EXPECT_GT(amr.stepsCompleted(), 0u);
  sc.runFor(sec(30));
  // Everything was released on abort.
  EXPECT_EQ(sc.server().pool().freeCount(kC), 64);
}

TEST(ServerRobustness, PendingGrowDoesNotDeadlockGuaranteedUpdates) {
  // Regression: a PSA's pending grow request (sized from a stale view)
  // must not reserve capacity it can never get and starve an AMR's
  // guaranteed update. With coarse re-scheduling (5 s) this used to
  // deadlock the whole simulation.
  ScenarioConfig cfg;
  cfg.nodes = 64;
  cfg.server.reschedInterval = sec(5);
  cfg.server.violationGrace = sec(20);
  Scenario sc(cfg);

  AmrApp::Config amrCfg;
  amrCfg.cluster = kC;
  for (int i = 0; i < 40; ++i) {
    amrCfg.sizesMiB.push_back(1500.0 * (i + 1));
  }
  amrCfg.preallocNodes = 48;
  amrCfg.walltime = hours(12);
  AmrApp& amr = sc.addAmr(amrCfg);

  PsaApp::Config psaCfg;
  psaCfg.cluster = kC;
  psaCfg.taskDuration = sec(120);
  sc.addPsa(psaCfg);

  sc.runUntilFinished(amr, hours(24));
  EXPECT_TRUE(amr.finished());
  EXPECT_EQ(amr.stepsCompleted(), 40u);
}

TEST(ServerRobustness, DoneOnForeignRequestIsIgnored) {
  ScenarioConfig cfg;
  cfg.nodes = 8;
  Scenario sc(cfg);
  RigidApp& victim = sc.addRigid({kC, 4, sec(120)}, "victim");
  sc.runFor(sec(5));

  class Meddler : public Application {
   public:
    using Application::Application;
    void tryDone(RequestId id) { session().done(id); }
  };
  Meddler meddler(sc.engine(), "meddler");
  meddler.connectTo(sc.server());
  sc.runFor(sec(2));
  // The victim's NP request has id 0 (first request in the system); a
  // foreign done() must be ignored.
  meddler.tryDone(RequestId{0});
  sc.runFor(sec(30));
  EXPECT_FALSE(victim.finished());  // still running, untouched
  sc.runFor(sec(120));
  EXPECT_TRUE(victim.finished());
}

}  // namespace
}  // namespace coorm

// Preemptible requests: equi-partition views, filling, yanking resources
// back for non-preemptible growth, and protocol-violation kills.
#include <gtest/gtest.h>

#include "coorm/rms/server.hpp"
#include "coorm/sim/engine.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

/// Minimal cooperative malleable endpoint: keeps its preemptible request
/// sized to its preemptive view (like a PSA without tasks).
class MiniMalleable : public AppEndpoint {
 public:
  explicit MiniMalleable(bool cooperative = true)
      : cooperative_(cooperative) {}

  void onViews(const View& np, const View& p) override {
    (void)np;
    view = p;
    ++viewPushes;
    replan();
  }
  void onStarted(RequestId id, const std::vector<NodeId>& ids) override {
    if (id != pending) return;
    pending = RequestId{};
    current = id;
    held = ids;
    inFlight = false;
    replan();
  }
  void onExpired(RequestId id) override { session->done(id); }
  void onKilled() override { killed = true; }

  void replan() {
    if (!cooperative_ || session == nullptr || inFlight || killed) return;
    const NodeCount allowed = view.at(kC, now());
    const NodeCount have = std::ssize(held);
    if (allowed == have && current.valid()) return;
    RequestSpec spec;
    spec.cluster = kC;
    spec.nodes = allowed;
    spec.duration = kTimeInf;
    spec.type = RequestType::kPreemptible;
    if (current.valid()) {
      spec.relatedHow = Relation::kNext;
      spec.relatedTo = current;
      if (allowed <= 0) {
        // Give everything back.
        std::vector<NodeId> all = held;
        held.clear();
        session->done(current, all);
        current = RequestId{};
        return;
      }
      pending = session->request(spec);
      inFlight = true;
      std::vector<NodeId> released;
      if (allowed < have) {
        released.assign(held.begin() + allowed, held.end());
        held.resize(static_cast<std::size_t>(allowed));
      }
      session->done(current, released);
      current = RequestId{};
    } else if (allowed > 0) {
      pending = session->request(spec);
      inFlight = true;
    }
  }

  [[nodiscard]] Time now() const { return exec->now(); }

  Session* session = nullptr;
  const Executor* exec = nullptr;
  View view;
  std::vector<NodeId> held;
  RequestId current, pending;
  bool inFlight = false;
  bool killed = false;
  int viewPushes = 0;
  bool cooperative_;
};

class RigidEndpoint : public AppEndpoint {
 public:
  void onStarted(RequestId id, const std::vector<NodeId>&) override {
    started.push_back(id);
  }
  void onExpired(RequestId id) override { session->done(id); }
  Session* session = nullptr;
  std::vector<RequestId> started;
};

class PreemptionTest : public ::testing::Test {
 protected:
  PreemptionTest() : server_(engine_, Machine::single(10), config()) {}

  static Server::Config config() {
    Server::Config c;
    c.reschedInterval = sec(1);
    c.violationGrace = sec(5);
    return c;
  }

  void attach(MiniMalleable& app) {
    app.session = server_.connect(app);
    app.exec = &engine_;
  }

  void runUntil(Time t) { engine_.runUntil(t); }

  Engine engine_;
  Server server_;
};

TEST_F(PreemptionTest, MalleableFillsWholeIdleMachine) {
  MiniMalleable psa;
  attach(psa);
  runUntil(sec(3));
  EXPECT_EQ(std::ssize(psa.held), 10);
}

TEST_F(PreemptionTest, TwoMalleablesConvergeToEquiPartition) {
  MiniMalleable a, b;
  attach(a);
  attach(b);
  runUntil(sec(30));
  // Between them they must not exceed the machine...
  EXPECT_LE(std::ssize(a.held) + std::ssize(b.held), 10);
  // ...and each holds at least its entitled half.
  EXPECT_GE(std::ssize(a.held), 5);
  EXPECT_GE(std::ssize(b.held), 5);
}

TEST_F(PreemptionTest, NonPreemptibleGrowthYanksPreemptibleNodes) {
  MiniMalleable psa;
  attach(psa);
  RigidEndpoint rigid;
  rigid.session = server_.connect(rigid);
  runUntil(sec(3));
  ASSERT_EQ(std::ssize(psa.held), 10);

  RequestSpec np;
  np.cluster = kC;
  np.nodes = 6;
  np.duration = sec(100);
  np.type = RequestType::kNonPreemptible;
  const RequestId id = rigid.session->request(np);
  runUntil(sec(10));
  EXPECT_EQ(rigid.started, std::vector<RequestId>{id});
  EXPECT_EQ(std::ssize(psa.held), 4);
}

TEST_F(PreemptionTest, PreemptibleComesBackWhenNpEnds) {
  MiniMalleable psa;
  attach(psa);
  RigidEndpoint rigid;
  rigid.session = server_.connect(rigid);
  runUntil(sec(3));

  RequestSpec np;
  np.cluster = kC;
  np.nodes = 6;
  np.duration = sec(20);
  np.type = RequestType::kNonPreemptible;
  rigid.session->request(np);
  runUntil(sec(15));
  EXPECT_EQ(std::ssize(psa.held), 4);
  runUntil(sec(40));
  EXPECT_EQ(std::ssize(psa.held), 10);
}

TEST_F(PreemptionTest, UncooperativeAppIsKilled) {
  MiniMalleable good;
  attach(good);
  runUntil(sec(3));
  ASSERT_EQ(std::ssize(good.held), 10);
  good.cooperative_ = false;  // stops reacting from now on

  RigidEndpoint rigid;
  rigid.session = server_.connect(rigid);
  RequestSpec np;
  np.cluster = kC;
  np.nodes = 6;
  np.duration = sec(100);
  np.type = RequestType::kNonPreemptible;
  const RequestId id = rigid.session->request(np);

  runUntil(sec(30));  // beyond the violation grace
  EXPECT_TRUE(good.killed);
  // The rigid app got its nodes after the kill.
  EXPECT_EQ(rigid.started, std::vector<RequestId>{id});
}

TEST_F(PreemptionTest, PreemptibleViewSignalsFutureDrop) {
  // A queued NP request with a future start must show up as a future drop
  // in the preemptive view, not an immediate one.
  MiniMalleable psa;
  attach(psa);
  RigidEndpoint rigid;
  rigid.session = server_.connect(rigid);
  runUntil(sec(3));

  RequestSpec first;
  first.cluster = kC;
  first.nodes = 10;
  first.duration = sec(50);
  first.type = RequestType::kNonPreemptible;
  rigid.session->request(first);
  runUntil(sec(10));
  // Machine fully non-preemptible: the PSA holds nothing.
  EXPECT_EQ(std::ssize(psa.held), 0);
  // Its view promises capacity back when the NP job ends.
  EXPECT_GT(psa.view.at(kC, sec(120)), 0);
}

}  // namespace
}  // namespace coorm

#include "coorm/rms/node_pool.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

const ClusterId kC{0};

TEST(NodePool, InitialState) {
  NodePool pool(Machine::single(10));
  EXPECT_EQ(pool.freeCount(kC), 10);
  EXPECT_EQ(pool.totalCount(kC), 10);
  EXPECT_TRUE(pool.isFree(NodeId{kC, 0}));
}

TEST(NodePool, AllocateLowestIndicesFirst) {
  NodePool pool(Machine::single(10));
  const auto nodes = pool.allocate(kC, 3);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0].index, 0);
  EXPECT_EQ(nodes[1].index, 1);
  EXPECT_EQ(nodes[2].index, 2);
  EXPECT_EQ(pool.freeCount(kC), 7);
  EXPECT_FALSE(pool.isFree(nodes[0]));
}

TEST(NodePool, ReleaseMakesNodesReusable) {
  NodePool pool(Machine::single(4));
  auto nodes = pool.allocate(kC, 4);
  EXPECT_EQ(pool.freeCount(kC), 0);
  pool.release(std::vector<NodeId>{nodes[1], nodes[3]});
  EXPECT_EQ(pool.freeCount(kC), 2);
  const auto again = pool.allocate(kC, 2);
  EXPECT_EQ(again[0].index, 1);
  EXPECT_EQ(again[1].index, 3);
}

TEST(NodePool, AllocateZeroIsEmpty) {
  NodePool pool(Machine::single(4));
  EXPECT_TRUE(pool.allocate(kC, 0).empty());
  EXPECT_EQ(pool.freeCount(kC), 4);
}

TEST(NodePool, MultipleClusters) {
  Machine machine;
  machine.clusters.push_back({ClusterId{0}, 2});
  machine.clusters.push_back({ClusterId{1}, 5});
  NodePool pool(machine);
  EXPECT_EQ(pool.freeCount(ClusterId{0}), 2);
  EXPECT_EQ(pool.freeCount(ClusterId{1}), 5);
  const auto a = pool.allocate(ClusterId{1}, 4);
  EXPECT_EQ(pool.freeCount(ClusterId{1}), 1);
  EXPECT_EQ(pool.freeCount(ClusterId{0}), 2);
  for (const NodeId& n : a) EXPECT_EQ(n.cluster, ClusterId{1});
}

TEST(NodePool, ExhaustAndRefill) {
  NodePool pool(Machine::single(3));
  auto all = pool.allocate(kC, 3);
  EXPECT_EQ(pool.freeCount(kC), 0);
  pool.release(all);
  EXPECT_EQ(pool.freeCount(kC), 3);
  all = pool.allocate(kC, 3);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Machine, Helpers) {
  const Machine m = Machine::single(1400);
  EXPECT_EQ(m.totalNodes(), 1400);
  EXPECT_EQ(m.nodesOn(ClusterId{0}), 1400);
  EXPECT_EQ(m.nodesOn(ClusterId{9}), 0);
}

}  // namespace
}  // namespace coorm

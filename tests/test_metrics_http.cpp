// MetricsHttpServer tests: a raw TCP client scrapes /metrics off the
// IoExecutor loop and the Prometheus exposition renders the catalogue.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cerrno>
#include <string>

#include "coorm/common/metrics.hpp"
#include "coorm/net/metrics_http.hpp"
#include "coorm/net/socket.hpp"

using namespace coorm;

namespace {

/// Issues one HTTP request against the server and pumps the loop until
/// the peer closes (HTTP/1.0). Returns the raw response bytes.
std::string fetch(net::IoExecutor& executor, std::uint16_t port,
                  const std::string& request) {
  std::string error;
  net::Fd fd = net::connectTo(net::Endpoint{"127.0.0.1", port}, error);
  EXPECT_TRUE(fd.valid()) << error;
  if (!fd.valid()) return {};
  EXPECT_EQ(::send(fd.get(), request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (int spins = 0; spins < 2000; ++spins) {
    executor.runOne(1);
    const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      response.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // orderly close: response complete
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) break;
  }
  return response;
}

}  // namespace

TEST(MetricsHttp, ServesPrometheusTextOnMetricsPath) {
  metrics::reset();
  metrics::increment(metrics::Event::kSchedulePasses, 5);
  metrics::record(metrics::Histo::kPassLatencyUs, 120);
  metrics::record(metrics::Histo::kPassLatencyUs, 450);

  auto executor = net::makeIoExecutor(IoBackend::kPoll);
  net::MetricsHttpServer server(*executor);
  std::string error;
  ASSERT_TRUE(server.start(net::Endpoint{"127.0.0.1", 0}, error)) << error;
  ASSERT_NE(server.port(), 0);

  const std::string response =
      fetch(*executor, server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("coorm_schedule_passes_total 5"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE coorm_pass_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(response.find("coorm_pass_latency_us_count 2"),
            std::string::npos);
  EXPECT_NE(response.find("coorm_pass_latency_us_sum 570"),
            std::string::npos);
  EXPECT_NE(response.find("_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_EQ(server.scrapesServed(), 1u);
  metrics::reset();
}

TEST(MetricsHttp, UnknownPathIs404AndBadRequestIs400) {
  auto executor = net::makeIoExecutor(IoBackend::kPoll);
  net::MetricsHttpServer server(*executor);
  std::string error;
  ASSERT_TRUE(server.start(net::Endpoint{"127.0.0.1", 0}, error)) << error;

  const std::string notFound =
      fetch(*executor, server.port(), "GET /other HTTP/1.0\r\n\r\n");
  EXPECT_NE(notFound.find("404 Not Found"), std::string::npos);

  const std::string bad =
      fetch(*executor, server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
  EXPECT_EQ(server.scrapesServed(), 0u);
}

TEST(MetricsHttp, ServesSequentialScrapes) {
  auto executor = net::makeIoExecutor(IoBackend::kPoll);
  net::MetricsHttpServer server(*executor);
  std::string error;
  ASSERT_TRUE(server.start(net::Endpoint{"127.0.0.1", 0}, error)) << error;
  for (int i = 0; i < 3; ++i) {
    const std::string response =
        fetch(*executor, server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
    EXPECT_NE(response.find("200 OK"), std::string::npos) << "scrape " << i;
  }
  EXPECT_EQ(server.scrapesServed(), 3u);
  server.stop();
  EXPECT_EQ(server.port(), 0);
}

TEST(MetricsHttp, RenderIsInternallyConsistent) {
  metrics::reset();
  metrics::record(metrics::Histo::kRequestRttUs, 1);
  metrics::record(metrics::Histo::kRequestRttUs, 1000000);
  const std::string text = net::renderPrometheus(metrics::snapshot());
  // Every histogram ends with a +Inf bucket equal to its _count.
  EXPECT_NE(text.find("coorm_request_rtt_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("coorm_request_rtt_us_count 2"), std::string::npos);
  // Counters and gauges render even at zero (Prometheus wants stable
  // series).
  EXPECT_NE(text.find("coorm_journal_fsyncs_total 0"), std::string::npos);
  EXPECT_NE(text.find("# TYPE coorm_live_sessions gauge"),
            std::string::npos);
  metrics::reset();
}

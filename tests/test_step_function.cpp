#include "coorm/profile/step_function.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

TEST(StepFunction, DefaultIsZeroEverywhere) {
  const StepFunction f;
  EXPECT_TRUE(f.isZero());
  EXPECT_EQ(f.at(0), 0);
  EXPECT_EQ(f.at(1'000'000), 0);
  EXPECT_EQ(f.segmentCount(), 1u);
}

TEST(StepFunction, ConstantFunction) {
  const auto f = StepFunction::constant(7);
  EXPECT_EQ(f.at(0), 7);
  EXPECT_EQ(f.at(kTimeInf - 1), 7);
  EXPECT_EQ(f.tailValue(), 7);
  EXPECT_FALSE(f.isZero());
}

TEST(StepFunction, PulseBasics) {
  const auto f = StepFunction::pulse(sec(10), sec(5), 3);
  EXPECT_EQ(f.at(0), 0);
  EXPECT_EQ(f.at(sec(10) - 1), 0);
  EXPECT_EQ(f.at(sec(10)), 3);       // inclusive start
  EXPECT_EQ(f.at(sec(15) - 1), 3);
  EXPECT_EQ(f.at(sec(15)), 0);       // exclusive end
}

TEST(StepFunction, PulseAtZero) {
  const auto f = StepFunction::pulse(0, sec(1), 5);
  EXPECT_EQ(f.at(0), 5);
  EXPECT_EQ(f.at(sec(1)), 0);
}

TEST(StepFunction, InfinitePulseNeverEnds) {
  const auto f = StepFunction::pulse(sec(3), kTimeInf, 2);
  EXPECT_EQ(f.at(sec(2)), 0);
  EXPECT_EQ(f.at(sec(3)), 2);
  EXPECT_EQ(f.tailValue(), 2);
}

TEST(StepFunction, ZeroDurationPulseIsZero) {
  EXPECT_TRUE(StepFunction::pulse(sec(3), 0, 9).isZero());
}

TEST(StepFunction, ZeroValuePulseIsZero) {
  EXPECT_TRUE(StepFunction::pulse(sec(3), sec(4), 0).isZero());
}

TEST(StepFunction, NegativeTimeClampsToZero) {
  const auto f = StepFunction::pulse(0, sec(1), 5);
  EXPECT_EQ(f.at(-100), 5);
}

TEST(StepFunction, FromSegmentsMergesAdjacentEqualValues) {
  const auto f = StepFunction::fromSegments(
      {{0, 1}, {sec(1), 1}, {sec(2), 2}, {sec(3), 2}, {sec(4), 0}});
  EXPECT_EQ(f.segmentCount(), 3u);
  EXPECT_EQ(f.at(sec(1)), 1);
  EXPECT_EQ(f.at(sec(3)), 2);
  EXPECT_EQ(f.at(sec(4)), 0);
}

TEST(StepFunction, Addition) {
  const auto a = StepFunction::pulse(sec(0), sec(10), 2);
  const auto b = StepFunction::pulse(sec(5), sec(10), 3);
  const auto sum = a + b;
  EXPECT_EQ(sum.at(sec(0)), 2);
  EXPECT_EQ(sum.at(sec(5)), 5);
  EXPECT_EQ(sum.at(sec(10)), 3);
  EXPECT_EQ(sum.at(sec(15)), 0);
}

TEST(StepFunction, Subtraction) {
  const auto a = StepFunction::constant(10);
  const auto b = StepFunction::pulse(sec(2), sec(3), 4);
  const auto diff = a - b;
  EXPECT_EQ(diff.at(0), 10);
  EXPECT_EQ(diff.at(sec(2)), 6);
  EXPECT_EQ(diff.at(sec(5)), 10);
}

TEST(StepFunction, SubtractionMayGoNegative) {
  const auto a = StepFunction::constant(1);
  const auto b = StepFunction::pulse(sec(1), sec(1), 5);
  const auto diff = a - b;
  EXPECT_EQ(diff.at(sec(1)), -4);
  EXPECT_EQ(diff.minValue(), -4);
}

TEST(StepFunction, ClampMin) {
  auto f = StepFunction::constant(1) - StepFunction::pulse(sec(1), sec(1), 5);
  f.clampMin(0);
  EXPECT_EQ(f.at(sec(1)), 0);
  EXPECT_EQ(f.at(0), 1);
}

TEST(StepFunction, PointwiseMax) {
  auto a = StepFunction::pulse(0, sec(4), 3);
  const auto b = StepFunction::pulse(sec(2), sec(4), 5);
  a.pointwiseMax(b);
  EXPECT_EQ(a.at(sec(1)), 3);
  EXPECT_EQ(a.at(sec(3)), 5);
  EXPECT_EQ(a.at(sec(5)), 5);
  EXPECT_EQ(a.at(sec(6)), 0);
}

TEST(StepFunction, PointwiseMin) {
  auto a = StepFunction::constant(4);
  a.pointwiseMin(StepFunction::pulse(sec(1), sec(2), 2));
  EXPECT_EQ(a.at(0), 0);       // pulse is 0 before sec(1)
  EXPECT_EQ(a.at(sec(1)), 2);
  EXPECT_EQ(a.at(sec(3)), 0);
}

TEST(StepFunction, MinMaxOverWindow) {
  const auto f = StepFunction::fromSegments({{0, 5}, {sec(10), 2}, {sec(20), 8}});
  EXPECT_EQ(f.minOver(0, sec(5)), 5);
  EXPECT_EQ(f.minOver(0, sec(15)), 2);
  EXPECT_EQ(f.minOver(sec(15), kTimeInf), 2);
  EXPECT_EQ(f.maxOver(0, sec(15)), 5);
  EXPECT_EQ(f.maxOver(sec(5), kTimeInf), 8);
  // Right-open window: the value at sec(10) is excluded.
  EXPECT_EQ(f.minOver(0, sec(10)), 5);
}

TEST(StepFunction, IntegralNodeSeconds) {
  const auto f = StepFunction::pulse(sec(10), sec(20), 4);
  EXPECT_DOUBLE_EQ(f.integralNodeSeconds(0, sec(100)), 80.0);
  EXPECT_DOUBLE_EQ(f.integralNodeSeconds(sec(15), sec(100)), 60.0);
  EXPECT_DOUBLE_EQ(f.integralNodeSeconds(0, sec(10)), 0.0);
  EXPECT_DOUBLE_EQ(f.integralNodeSeconds(sec(12), sec(14)), 8.0);
}

TEST(StepFunction, IntegralOfEmptyWindowIsZero) {
  const auto f = StepFunction::constant(3);
  EXPECT_DOUBLE_EQ(f.integralNodeSeconds(sec(5), sec(5)), 0.0);
}

TEST(StepFunction, FirstFitOnConstantFunction) {
  const auto f = StepFunction::constant(4);
  EXPECT_EQ(f.firstFit(0, sec(10), 4), 0);
  EXPECT_EQ(f.firstFit(sec(3), sec(10), 4), sec(3));
  EXPECT_EQ(f.firstFit(0, sec(10), 5), kTimeInf);
  EXPECT_EQ(f.firstFit(0, kTimeInf, 4), 0);
}

TEST(StepFunction, FirstFitSkipsBusyRegion) {
  // 4 nodes, but only 1 available during [10s, 20s).
  const auto f = StepFunction::constant(4) -
                 StepFunction::pulse(sec(10), sec(10), 3);
  EXPECT_EQ(f.firstFit(0, sec(10), 2), 0);        // fits before the dip
  EXPECT_EQ(f.firstFit(0, sec(11), 2), sec(20));  // too long: after the dip
  EXPECT_EQ(f.firstFit(sec(5), sec(6), 2), sec(20));
  EXPECT_EQ(f.firstFit(sec(12), sec(1), 1), sec(12));  // 1 node is enough
}

TEST(StepFunction, FirstFitWindowSpanningSegments) {
  const auto f = StepFunction::fromSegments({{0, 2}, {sec(5), 3}, {sec(9), 2}});
  // Need 2 nodes for 20 s: available everywhere.
  EXPECT_EQ(f.firstFit(0, sec(20), 2), 0);
  // Need 3 nodes: only within [5s, 9s).
  EXPECT_EQ(f.firstFit(0, sec(4), 3), sec(5));
  EXPECT_EQ(f.firstFit(0, sec(5), 3), kTimeInf);
}

TEST(StepFunction, FirstFitZeroDurationOrNeed) {
  const auto f = StepFunction::constant(0);
  EXPECT_EQ(f.firstFit(sec(7), 0, 5), sec(7));
  EXPECT_EQ(f.firstFit(sec(7), sec(5), 0), sec(7));
}

TEST(StepFunction, FirstFitInfiniteEarliest) {
  const auto f = StepFunction::constant(4);
  EXPECT_EQ(f.firstFit(kTimeInf, sec(1), 1), kTimeInf);
}

TEST(StepFunction, FirstFitOnTailSegment) {
  const auto f = StepFunction::fromSegments({{0, 0}, {sec(100), 6}});
  EXPECT_EQ(f.firstFit(0, kTimeInf, 6), sec(100));
  EXPECT_EQ(f.firstFit(sec(200), sec(10), 6), sec(200));
}

TEST(StepFunction, EqualityIsCanonical) {
  const auto a = StepFunction::fromSegments({{0, 1}, {sec(2), 1}, {sec(4), 0}});
  const auto b = StepFunction::pulse(0, sec(4), 1);
  EXPECT_EQ(a, b);
}

TEST(StepFunction, ToStringFormat) {
  const auto f = StepFunction::pulse(1000, 2000, 3);
  EXPECT_EQ(f.toString(), "[0:0 1000:3 3000:0]");
}

TEST(StepFunction, AdditionIdentity) {
  const auto f = StepFunction::pulse(sec(1), sec(2), 3);
  EXPECT_EQ(f + StepFunction{}, f);
}

TEST(StepFunction, SelfSubtractionIsZero) {
  const auto f = StepFunction::pulse(sec(1), sec(2), 3);
  EXPECT_TRUE((f - f).isZero());
}

}  // namespace
}  // namespace coorm

// Rigid and moldable application behaviour (§4).
#include <gtest/gtest.h>

#include "coorm/exp/scenario.hpp"

namespace coorm {
namespace {

ScenarioConfig smallMachine(NodeCount nodes = 10) {
  ScenarioConfig config;
  config.nodes = nodes;
  return config;
}

TEST(RigidApp, RunsForItsDurationAndFinishes) {
  Scenario sc(smallMachine());
  RigidApp& app = sc.addRigid({ClusterId{0}, 4, sec(60)});
  sc.runFor(sec(120));
  EXPECT_TRUE(app.finished());
  EXPECT_EQ(app.endTime() - app.startTime(), sec(60));
  EXPECT_EQ(sc.server().pool().freeCount(ClusterId{0}), 10);
}

TEST(RigidApp, TwoRigidJobsQueue) {
  Scenario sc(smallMachine());
  RigidApp& a = sc.addRigid({ClusterId{0}, 8, sec(60)}, "a");
  RigidApp& b = sc.addRigid({ClusterId{0}, 8, sec(60)}, "b");
  sc.runFor(sec(300));
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
  EXPECT_GE(b.startTime(), a.endTime());
}

TEST(RigidApp, AllocationRecordedInMetrics) {
  Scenario sc(smallMachine());
  RigidApp& app = sc.addRigid({ClusterId{0}, 4, sec(60)});
  sc.runFor(sec(120));
  EXPECT_NEAR(sc.metrics().allocatedNodeSeconds(app.appId()), 4.0 * 60.0,
              1.0);
}

TEST(MoldableApp, PicksLargeAllocationOnIdleMachine) {
  Scenario sc(smallMachine(64));
  MoldableApp::Config config;
  config.sizeMiB = 50.0 * 1024.0;
  config.steps = 10;
  config.candidates = {1, 2, 4, 8, 16, 32, 64};
  MoldableApp& app = sc.addMoldable(config);
  sc.runFor(hours(12));
  EXPECT_TRUE(app.finished());
  // On an idle machine the end time is minimized by the fastest
  // node-count; for this size the more nodes the faster (up to 64).
  EXPECT_EQ(app.chosenNodes(), 64);
}

TEST(MoldableApp, PrefersFewerNodesSoonerOverMoreNodesLater) {
  Scenario sc(smallMachine(64));
  // A rigid job holds 60 nodes for a long time: only 4 remain free now.
  sc.addRigid({ClusterId{0}, 60, hours(10)}, "blocker");
  MoldableApp::Config config;
  config.sizeMiB = 1024.0;  // small working set: 4 nodes are decent
  config.steps = 50;
  config.candidates = {4, 64};
  MoldableApp& app = sc.addMoldable(config);
  sc.runFor(sec(30));
  EXPECT_EQ(app.chosenNodes(), 4);
}

TEST(MoldableApp, RuntimeEstimateMatchesModel) {
  Scenario sc(smallMachine(8));
  MoldableApp::Config config;
  config.sizeMiB = 2048.0;
  config.steps = 7;
  MoldableApp& app = sc.addMoldable(config);
  const SpeedupModel model;
  EXPECT_EQ(app.runtimeAt(4), secF(7 * model.stepDuration(4, 2048.0)));
  sc.runFor(hours(1));
}

}  // namespace
}  // namespace coorm

#include "coorm/rms/request_set.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

Request makeRequest(std::int64_t id, Relation how = Relation::kFree,
                    Request* parent = nullptr) {
  Request r;
  r.id = RequestId{id};
  r.relatedHow = how;
  r.relatedTo = parent;
  return r;
}

TEST(RequestSet, AddFindRemove) {
  Request a = makeRequest(1);
  RequestSet set;
  EXPECT_TRUE(set.empty());
  set.add(&a);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.find(RequestId{1}), &a);
  EXPECT_TRUE(set.contains(&a));
  set.remove(RequestId{1});
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.find(RequestId{1}), nullptr);
}

TEST(RequestSet, RemoveMissingIsNoop) {
  Request a = makeRequest(1);
  RequestSet set;
  set.add(&a);
  set.remove(RequestId{99});
  EXPECT_EQ(set.size(), 1u);
}

TEST(RequestSet, VersionBumpsOnEveryMembershipMutation) {
  // The membership version backs the snapshot's stale-skip guard: every
  // add() and every remove() that actually erased a member must move it,
  // and nothing else may (a stable version is what lets the epoch-skip
  // fast path trust its captured image).
  Request a = makeRequest(1);
  Request b = makeRequest(2);
  RequestSet set;
  const std::uint64_t v0 = set.version();

  set.add(&a);
  const std::uint64_t v1 = set.version();
  EXPECT_NE(v1, v0);
  set.add(&b);
  const std::uint64_t v2 = set.version();
  EXPECT_NE(v2, v1);

  // Reads leave the version alone.
  (void)set.find(RequestId{1});
  (void)set.contains(&a);
  (void)set.roots();
  (void)set.children(a);
  EXPECT_EQ(set.version(), v2);

  // A remove() that misses is a no-op, version included.
  set.remove(RequestId{99});
  EXPECT_EQ(set.version(), v2);

  set.remove(RequestId{1});
  const std::uint64_t v3 = set.version();
  EXPECT_NE(v3, v2);

  // Removing the same id twice only counts once.
  set.remove(RequestId{1});
  EXPECT_EQ(set.version(), v3);

  // Re-adding after a remove is a fresh mutation: the version must not
  // return to a previously seen value (monotonic, never ABA).
  set.add(&a);
  EXPECT_NE(set.version(), v3);
  EXPECT_NE(set.version(), v2);
  EXPECT_NE(set.version(), v1);
}

TEST(RequestSet, FreeRequestsAreRoots) {
  Request a = makeRequest(1);
  Request b = makeRequest(2);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  const auto roots = set.roots();
  EXPECT_EQ(roots.size(), 2u);
}

TEST(RequestSet, ConstrainedChildIsNotRoot) {
  Request a = makeRequest(1);
  Request b = makeRequest(2, Relation::kNext, &a);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  const auto roots = set.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], &a);
  const auto children = set.children(a);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], &b);
}

TEST(RequestSet, ConstraintOutsideSetMakesRoot) {
  // Paper A.2: a request whose relatedTo is not a member of the set is a
  // root of its own tree (e.g. an NP request COALLOC'd with a PA).
  Request pa = makeRequest(1);
  Request np = makeRequest(2, Relation::kCoAlloc, &pa);
  RequestSet npSet;
  npSet.add(&np);
  const auto roots = npSet.roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], &np);
}

TEST(RequestSet, MultiLevelTree) {
  Request a = makeRequest(1);
  Request b = makeRequest(2, Relation::kNext, &a);
  Request c = makeRequest(3, Relation::kNext, &b);
  Request d = makeRequest(4, Relation::kCoAlloc, &a);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  set.add(&c);
  set.add(&d);
  EXPECT_EQ(set.roots().size(), 1u);
  EXPECT_EQ(set.children(a).size(), 2u);
  EXPECT_EQ(set.children(b).size(), 1u);
  EXPECT_EQ(set.children(c).size(), 0u);
}

TEST(RequestSet, IterationPreservesInsertionOrder) {
  Request a = makeRequest(10);
  Request b = makeRequest(5);
  Request c = makeRequest(7);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  set.add(&c);
  std::vector<std::int64_t> order;
  for (const Request* r : set) order.push_back(r->id.value);
  EXPECT_EQ(order, (std::vector<std::int64_t>{10, 5, 7}));
}

// --- iteration-order contract ----------------------------------------------
// The scheduler's determinism (including the parallel path's bit-identical
// guarantee) rests on forEachRoot/forEachChild walking the set in insertion
// order: toView/fit seed their worklists from these, and eqSchedule's fair
// distribution breaks ties by input order.

TEST(RequestSetOrder, ForEachRootYieldsInsertionOrder) {
  Request a = makeRequest(30);
  Request b = makeRequest(10);
  Request childOfA = makeRequest(20, Relation::kNext, &a);
  Request c = makeRequest(5);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  set.add(&childOfA);
  set.add(&c);

  std::vector<std::int64_t> order;
  set.forEachRoot([&](Request* r) { order.push_back(r->id.value); });
  // Roots in insertion order — never sorted by id, never grouped by tree.
  EXPECT_EQ(order, (std::vector<std::int64_t>{30, 10, 5}));

  // roots() is specified to match the allocation-free walk exactly.
  std::vector<std::int64_t> fromRoots;
  for (Request* r : set.roots()) fromRoots.push_back(r->id.value);
  EXPECT_EQ(fromRoots, order);
}

TEST(RequestSetOrder, ForEachChildYieldsInsertionOrder) {
  Request parent = makeRequest(1);
  Request late = makeRequest(40, Relation::kCoAlloc, &parent);
  Request other = makeRequest(2);
  Request early = makeRequest(3, Relation::kNext, &parent);
  RequestSet set;
  set.add(&parent);
  set.add(&late);
  set.add(&other);
  set.add(&early);

  std::vector<std::int64_t> order;
  set.forEachChild(parent, [&](Request* r) { order.push_back(r->id.value); });
  // Children in insertion order (40 was added before 3), regardless of id
  // or relation kind.
  EXPECT_EQ(order, (std::vector<std::int64_t>{40, 3}));

  std::vector<std::int64_t> fromChildren;
  for (Request* r : set.children(parent)) {
    fromChildren.push_back(r->id.value);
  }
  EXPECT_EQ(fromChildren, order);
}

TEST(RequestSetOrder, RemoveKeepsRelativeOrderOfTheRest) {
  Request a = makeRequest(1);
  Request b = makeRequest(2);
  Request c = makeRequest(3);
  Request d = makeRequest(4);
  RequestSet set;
  set.add(&a);
  set.add(&b);
  set.add(&c);
  set.add(&d);
  set.remove(RequestId{2});

  std::vector<std::int64_t> order;
  set.forEachRoot([&](Request* r) { order.push_back(r->id.value); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 3, 4}));

  // Re-adding lands at the back, not at the old position.
  set.add(&b);
  order.clear();
  set.forEachRoot([&](Request* r) { order.push_back(r->id.value); });
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 3, 4, 2}));
}

TEST(RequestSetOrder, ChildWithFreeRelationIsNeverYielded) {
  // relatedTo may dangle on FREE requests (e.g. a cleared constraint);
  // forEachChild must ignore them even when the pointer matches.
  Request parent = makeRequest(1);
  Request freeButPointing = makeRequest(2, Relation::kFree, &parent);
  RequestSet set;
  set.add(&parent);
  set.add(&freeButPointing);
  std::size_t children = 0;
  set.forEachChild(parent, [&](Request*) { ++children; });
  EXPECT_EQ(children, 0u);
  // And a FREE request is a root even with relatedTo set.
  std::vector<std::int64_t> roots;
  set.forEachRoot([&](Request* r) { roots.push_back(r->id.value); });
  EXPECT_EQ(roots, (std::vector<std::int64_t>{1, 2}));
}

TEST(RequestDescribe, MentionsTypeAndConstraint) {
  Request a = makeRequest(1);
  a.type = RequestType::kPreAllocation;
  a.nodes = 10;
  a.duration = sec(60);
  Request b = makeRequest(2, Relation::kNext, &a);
  b.type = RequestType::kNonPreemptible;
  b.nodes = 5;
  b.duration = kTimeInf;
  EXPECT_NE(a.describe().find("PA"), std::string::npos);
  EXPECT_NE(b.describe().find("NEXT->req1"), std::string::npos);
  EXPECT_NE(b.describe().find("inf"), std::string::npos);
}

TEST(RequestLifecycle, StartedAndEndedFlags) {
  Request r = makeRequest(1);
  EXPECT_FALSE(r.started());
  EXPECT_FALSE(r.ended());
  r.startedAt = sec(5);
  r.duration = sec(10);
  EXPECT_TRUE(r.started());
  EXPECT_EQ(r.plannedEnd(), sec(15));
  r.endedAt = sec(12);
  EXPECT_TRUE(r.ended());
}

}  // namespace
}  // namespace coorm

// Chaos differential suite: SIGKILL the daemon mid-run, restart it on the
// same journal, and require that the application-observed traces come out
// *identical* to an uninterrupted in-process serial server — the crash
// never happened as far as any client can tell.
//
// Two kill points (the acceptance bar asks for at least two distinct
// ones):
//  - between pass commits: a request is running (its start is journaled
//    and fsync'd before the client ever hears "started"), the daemon dies,
//    and the restarted daemon must re-arm its expiry on the recovered
//    clock and serve the rest of its life normally;
//  - mid-handshake: a second application's connect() spans the kill and
//    the restart — its dial/HELLO retries (client backoff policy) bridge
//    the outage, while the first application RESUMEs its session.
//
// Alignment: all injected chaos is gated on client-observed post-commit
// events (a started/ended line in a trace), so both runs decompose into
// the same sequence of scheduling decisions. Re-announced notifications
// after a RESUME are deduplicated client-side; the traces would show the
// duplication otherwise.
#include "net_harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace coorm::nettest {
namespace {

bool contains(const std::vector<std::string>& trace, const std::string& line) {
  return std::find(trace.begin(), trace.end(), line) != trace.end();
}

std::size_t eventIndex(metrics::Event event) {
  return static_cast<std::size_t>(event);
}

/// Serial (non-pipelined) config: the reference the acceptance bar names.
Server::Config chaosConfig() {
  Server::Config config;
  config.reschedInterval = msec(100);
  config.violationGrace = sec(5);
  config.pipeline = false;
  return config;
}

// The chaos daemons run the full c100k serving path explicitly: epoll
// backend, delta view pushes, write coalescing — a SIGKILL/restart must be
// invisible through all three (the restarted daemon knows nothing of the
// old delta sequence, so every resumed session restarts from a full push).
const std::vector<std::string> kDaemonArgs = {
    "--nodes", "16", "--resched", "0.1", "--no-pipeline",
    "--resume-grace", "30", "--io-backend", "epoll",
    "--delta-views", "on", "--coalesce", "on"};

/// The portable poll(2) fallback, same everything else.
const std::vector<std::string> kPollDaemonArgs = {
    "--nodes", "16", "--resched", "0.1", "--no-pipeline",
    "--resume-grace", "30", "--io-backend", "poll",
    "--delta-views", "on", "--coalesce", "on"};

std::string journalPath(const std::string& name) {
  const std::string path = testing::TempDir() + "coorm_chaos_" + name + ".journal";
  std::remove(path.c_str());
  return path;
}

/// Transport whose clients survive daemon death: reconnect + RESUME with
/// fast backoff, and enough dial attempts to bridge a restart window.
class ReconnectTransport final : public Transport {
 public:
  ReconnectTransport(net::PollExecutor& executor, std::uint16_t port)
      : executor_(executor), port_(port) {}

  AppLink& add(AppEndpoint& endpoint, const std::string& name) override {
    net::RmsClient::Config config{net::Endpoint{"127.0.0.1", port_}, name};
    config.rpcTimeout = sec(20);
    config.reconnect = true;
    config.connectAttempts = 400;
    config.backoffBase = msec(5);
    config.backoffMax = msec(100);
    auto client = std::make_unique<net::RmsClient>(executor_, config);
    client->connect(endpoint);
    clients.push_back(std::move(client));
    return *clients.back();
  }

  std::vector<std::unique_ptr<net::RmsClient>> clients;

 private:
  net::PollExecutor& executor_;
  std::uint16_t port_;
};

/// One app submits a 1.5 s non-preemptible request and rides it to the
/// end; `atStarted` (remote runs only) injects the kill once the start is
/// known committed.
struct SoloRun {
  ScriptApp app;
  Scenario scenario;
  std::function<void()> atStarted;

  void wire(Transport& transport) {
    app.onFirstViews = [this] {
      RequestSpec spec;
      spec.nodes = 4;
      spec.duration = msec(1500);
      app.submit(spec);
    };
    scenario.steps = {
        {[] { return true; },
         [this, &transport] { app.bind(transport.add(app, "solo")); }},
        {[this] { return app.startedCount >= 1; },
         [this] {
           if (atStarted) atStarted();
         }},
    };
    scenario.finished = [this] { return contains(app.trace, "ended #0"); };
  }
};

/// Two apps: alpha runs a long request; beta joins only after alpha's
/// start — in the chaos run that join spans the kill/restart window.
struct PairRun {
  ScriptApp alpha;
  ScriptApp beta;
  Scenario scenario;
  std::function<void()> atAlphaStarted;

  void wire(Transport& transport) {
    alpha.onFirstViews = [this] {
      RequestSpec spec;
      spec.nodes = 6;
      spec.duration = msec(2000);
      alpha.submit(spec);
    };
    beta.onFirstViews = [this] {
      RequestSpec spec;
      spec.nodes = 4;
      spec.duration = msec(800);
      beta.submit(spec);
    };
    scenario.steps = {
        {[] { return true; },
         [this, &transport] { alpha.bind(transport.add(alpha, "alpha")); }},
        {[this] { return alpha.startedCount >= 1; },
         [this, &transport] {
           if (atAlphaStarted) atAlphaStarted();
           beta.bind(transport.add(beta, "beta"));
         }},
    };
    scenario.finished = [this] {
      return contains(alpha.trace, "ended #0") &&
             contains(beta.trace, "ended #0");
    };
  }
};

TEST(NetChaos, KillBetweenPassCommitsMatchesUninterruptedServer) {
  SoloRun reference;
  Engine engine;
  Server server(engine, Machine::single(16), chaosConfig());
  InProcessTransport direct(server);
  reference.wire(direct);
  ASSERT_TRUE(runInProcess(engine, reference.scenario))
      << "in-process reference run did not finish";

  ChildDaemon daemon(COORM_RMSD_PATH, journalPath("passes"), kDaemonArgs);
  daemon.start();
  SoloRun remote;
  // The kill point: the client has observed "started", which the daemon
  // only sends after the pass commit fsync'd the start record — so the
  // journal provably holds the running request when SIGKILL lands.
  remote.atStarted = [&daemon] { daemon.restart(); };
  net::PollExecutor clientLoop;
  ReconnectTransport transport(clientLoop, daemon.port());
  remote.wire(transport);
  ASSERT_TRUE(runLoopback(clientLoop, remote.scenario, msec(600), sec(60)))
      << "chaos run did not finish";

  EXPECT_FALSE(reference.app.trace.empty());
  EXPECT_EQ(reference.app.trace, remote.app.trace);
  EXPECT_GE(transport.clients[0]->reconnects(), 1u);

  // Satellite (f): the restarted daemon's own counters report the
  // recovery — what `coorm_rmsd --stats --connect` prints.
  net::RmsClient statsq(
      clientLoop,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  const auto stats = statsq.stats();
  statsq.disconnect();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kJournalRecordsReplayed)],
            0u);
  EXPECT_GE(stats->events[eventIndex(metrics::Event::kSessionsResumed)], 1u);
  EXPECT_GE(stats->events[eventIndex(metrics::Event::kReconnects)], 1u);
  // The journal path really hit the disk after the restart: every commit
  // appends bytes and lands an fsync barrier, and the fsync latency
  // histogram saw the same barriers (wire v4 carries it end to end).
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kJournalBytesAppended)],
            0u);
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kJournalFsyncs)], 0u);
  const metrics::HistogramData& fsync =
      stats->histos[static_cast<std::size_t>(metrics::Histo::kJournalFsyncUs)];
  EXPECT_GT(fsync.count, 0u);
  EXPECT_GT(fsync.totalInBuckets(), 0u);
}

TEST(NetChaos, KillBetweenPassCommitsMatchesUnderPollFallback) {
  // Same bar on the portable poll(2) backend: the io-backend seam must not
  // change one observable byte, SIGKILL/restart included.
  SoloRun reference;
  Engine engine;
  Server server(engine, Machine::single(16), chaosConfig());
  InProcessTransport direct(server);
  reference.wire(direct);
  ASSERT_TRUE(runInProcess(engine, reference.scenario))
      << "in-process reference run did not finish";

  ChildDaemon daemon(COORM_RMSD_PATH, journalPath("passes_poll"),
                     kPollDaemonArgs);
  daemon.start();
  SoloRun remote;
  remote.atStarted = [&daemon] { daemon.restart(); };
  net::PollExecutor clientLoop;
  ReconnectTransport transport(clientLoop, daemon.port());
  remote.wire(transport);
  ASSERT_TRUE(runLoopback(clientLoop, remote.scenario, msec(600), sec(60)))
      << "chaos run did not finish";

  EXPECT_FALSE(reference.app.trace.empty());
  EXPECT_EQ(reference.app.trace, remote.app.trace);
  EXPECT_GE(transport.clients[0]->reconnects(), 1u);
}

/// Steady-state lease scenario: `holder` takes two open-ended preemptible
/// leases plus one long finite request and then goes quiet — every
/// subsequent pass sees it epoch-clean and all-started. `ticker` keeps the
/// pass cadence alive with a chain of short requests, so those passes
/// classify the holder as a lease. Releasing lease #1 and then killing the
/// daemon places the SIGKILL mid-steady-state with lease #0 still held and
/// lease #1 freshly ended.
struct LeaseRun {
  ScriptApp holder;
  ScriptApp ticker;
  Scenario scenario;
  std::function<void()> atSteadyState;

  void wire(Transport& transport) {
    holder.onFirstViews = [this] {
      RequestSpec lease;
      lease.nodes = 4;
      lease.duration = kTimeInf;
      lease.type = RequestType::kPreemptible;
      holder.submit(lease);  // #0: held across the kill
      lease.nodes = 2;
      holder.submit(lease);  // #1: released just before the kill
      RequestSpec finite;
      finite.nodes = 3;
      finite.duration = msec(4000);
      finite.type = RequestType::kNonPreemptible;
      holder.submit(finite);  // #2: its expiry spans the kill/restart
    };
    const auto tick = [this] {
      RequestSpec spec;
      spec.nodes = 2;
      spec.duration = msec(500);
      spec.type = RequestType::kNonPreemptible;
      ticker.submit(spec);
    };
    ticker.onFirstViews = tick;
    // Each resubmission waits for the views push that follows the previous
    // request's end: the real daemon commits a pass in the wire round-trip
    // gap between END and the next SUBMIT, so the reference run must leave
    // the same gap or the traces diverge on those interim pushes.
    const auto endedAndSettled = [](const ScriptApp& app, const char* mark) {
      return contains(app.trace, mark) && !app.trace.empty() &&
             app.trace.back().rfind("views", 0) == 0;
    };
    scenario.steps = {
        {[] { return true; },
         [this, &transport] { holder.bind(transport.add(holder, "holder")); }},
        {[this] { return holder.startedCount >= 3; },
         [this, &transport] { ticker.bind(transport.add(ticker, "ticker")); }},
        {[this] { return ticker.startedCount >= 1; },
         [this] { holder.finish(1); }},
        {[this] { return contains(holder.trace, "ended #1"); },
         [this] {
           if (atSteadyState) atSteadyState();
         }},
        {[this, endedAndSettled] {
           return endedAndSettled(ticker, "ended #0");
         },
         tick},
        {[this, endedAndSettled] {
           return endedAndSettled(ticker, "ended #1");
         },
         tick},
    };
    scenario.finished = [this] {
      return contains(holder.trace, "ended #2") &&
             contains(ticker.trace, "ended #2");
    };
  }
};

TEST(NetChaos, KillMidSteadyStateWithLeasesMatchesPristineServer) {
  // Reference: pristine serial full-recompute server, uninterrupted.
  LeaseRun reference;
  Engine engine;
  Server::Config pristine = chaosConfig();
  pristine.incremental = false;
  Server server(engine, Machine::single(16), pristine);
  InProcessTransport direct(server);
  reference.wire(direct);
  ASSERT_TRUE(runInProcess(engine, reference.scenario))
      << "in-process reference run did not finish";

  // Chaos run: the daemon keeps its defaults — incremental passes on —
  // so the kill lands while leases are being renewed from the scheduler's
  // cache, and the restart must rebuild that state from the journal alone.
  ChildDaemon daemon(COORM_RMSD_PATH, journalPath("leases"), kDaemonArgs);
  daemon.start();
  LeaseRun remote;
  remote.atSteadyState = [&daemon] { daemon.restart(); };
  net::PollExecutor clientLoop;
  ReconnectTransport transport(clientLoop, daemon.port());
  remote.wire(transport);
  ASSERT_TRUE(runLoopback(clientLoop, remote.scenario, msec(600), sec(60)))
      << "chaos run did not finish";

  EXPECT_FALSE(reference.holder.trace.empty());
  EXPECT_EQ(reference.holder.trace, remote.holder.trace);
  EXPECT_EQ(reference.ticker.trace, remote.ticker.trace);
  EXPECT_GE(transport.clients[0]->reconnects(), 1u);

  // No stale-lease resurrection: the lease released before the kill
  // started exactly once and never re-started after its end.
  const auto startsOf = [](const std::vector<std::string>& trace,
                           const std::string& needle) {
    return std::count_if(trace.begin(), trace.end(),
                         [&](const std::string& line) {
                           return line.find(needle) != std::string::npos;
                         });
  };
  EXPECT_EQ(startsOf(remote.holder.trace, "started #1"), 1);
  EXPECT_EQ(startsOf(remote.holder.trace, "ended #1"), 1);

  // The restarted daemon really ran incremental steady state: the ticker's
  // passes classified the quiet holder as an epoch-clean lease (skipped on
  // recapture and fed through the renew/preempt lease path) after the
  // journal replay rebuilt its sessions.
  net::RmsClient statsq(
      clientLoop,
      net::RmsClient::Config{net::Endpoint{"127.0.0.1", daemon.port()},
                             "statsq"});
  statsq.dial();
  const auto stats = statsq.stats();
  statsq.disconnect();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kJournalRecordsReplayed)],
            0u);
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kPassAppsClean)], 0u);
  EXPECT_GT(stats->events[eventIndex(metrics::Event::kLeasesRenewed)] +
                stats->events[eventIndex(metrics::Event::kLeasesPreempted)],
            0u);
}

TEST(NetChaos, KillMidHandshakeMatchesUninterruptedServer) {
  PairRun reference;
  Engine engine;
  Server server(engine, Machine::single(16), chaosConfig());
  InProcessTransport direct(server);
  reference.wire(direct);
  ASSERT_TRUE(runInProcess(engine, reference.scenario))
      << "in-process reference run did not finish";

  ChildDaemon daemon(COORM_RMSD_PATH, journalPath("handshake"), kDaemonArgs);
  daemon.start();
  PairRun remote;
  std::thread restarter;
  // The kill point: the daemon dies right before beta dials, and comes
  // back ~300 ms later from another thread — beta's connect() retry loop
  // (dial + HELLO, backoff policy) spans the outage, while alpha's
  // established session RESUMEs. fork+exec keeps the threaded restart
  // safe.
  remote.atAlphaStarted = [&daemon, &restarter] {
    daemon.kill();
    restarter = std::thread([&daemon] {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      daemon.start();
    });
  };
  net::PollExecutor clientLoop;
  ReconnectTransport transport(clientLoop, daemon.port());
  remote.wire(transport);
  const bool finished =
      runLoopback(clientLoop, remote.scenario, msec(600), sec(60));
  if (restarter.joinable()) restarter.join();
  ASSERT_TRUE(finished) << "chaos run did not finish";

  EXPECT_FALSE(reference.alpha.trace.empty());
  EXPECT_FALSE(reference.beta.trace.empty());
  EXPECT_EQ(reference.alpha.trace, remote.alpha.trace);
  EXPECT_EQ(reference.beta.trace, remote.beta.trace);
  EXPECT_GE(transport.clients[0]->reconnects(), 1u);
}

}  // namespace
}  // namespace coorm::nettest

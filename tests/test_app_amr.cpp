// Non-predictably evolving AMR application (§4, §5.1.1).
#include <gtest/gtest.h>

#include "coorm/exp/scenario.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

/// Small synthetic profile: grows, plateaus, shrinks.
std::vector<double> rampProfile(int steps = 30, double peakMiB = 200000.0) {
  std::vector<double> sizes;
  for (int i = 0; i < steps; ++i) {
    const double x = static_cast<double>(i) / (steps - 1);
    sizes.push_back(peakMiB * (x < 0.7 ? x / 0.7 : 1.0 - 0.3 * (x - 0.7)));
  }
  return sizes;
}

AmrApp::Config amrConfig(std::vector<double> sizes, NodeCount prealloc,
                         AmrApp::Mode mode = AmrApp::Mode::kDynamic,
                         Time announce = 0) {
  AmrApp::Config config;
  config.cluster = kC;
  config.sizesMiB = std::move(sizes);
  config.preallocNodes = prealloc;
  config.walltime = hours(20);
  config.mode = mode;
  config.announceInterval = announce;
  return config;
}

TEST(AmrApp, CompletesAllStepsDynamic) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  AmrApp& amr = sc.addAmr(amrConfig(rampProfile(), 150));
  sc.runUntilFinished(amr, hours(40));
  EXPECT_TRUE(amr.finished());
  EXPECT_EQ(amr.stepsCompleted(), 30u);
  EXPECT_EQ(sc.server().pool().freeCount(kC), 200);
}

TEST(AmrApp, DynamicTracksDesiredNodesPerStep) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  const auto sizes = rampProfile();
  AmrApp& amr = sc.addAmr(amrConfig(sizes, 150));
  sc.runUntilFinished(amr, hours(40));
  const SpeedupModel model;
  ASSERT_EQ(amr.stepNodes().size(), sizes.size());
  // After the first step the allocation follows the working set (clamped
  // by the pre-allocation). The first step uses the initial request.
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    const NodeCount expected = std::clamp<NodeCount>(
        model.nodesForEfficiency(sizes[i], 0.75), 1, 150);
    EXPECT_EQ(amr.stepNodes()[i], expected) << "step " << i;
  }
}

TEST(AmrApp, StaticModeHoldsPreallocationThroughout) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  AmrApp& amr =
      sc.addAmr(amrConfig(rampProfile(), 120, AmrApp::Mode::kStatic));
  sc.runUntilFinished(amr, hours(40));
  EXPECT_TRUE(amr.finished());
  for (const NodeCount n : amr.stepNodes()) EXPECT_EQ(n, 120);
}

TEST(AmrApp, StaticUsesMoreAreaThanDynamicWhenOvercommitted) {
  // With a generous pre-allocation (overcommit > 1), dynamic allocation
  // releases what it cannot use efficiently — the core of Fig. 9.
  auto runMode = [](AmrApp::Mode mode) {
    ScenarioConfig cfg;
    cfg.nodes = 700;
    Scenario sc(cfg);
    // Pre-allocation of 600 vs an efficient allocation of <= ~285 nodes.
    AmrApp& amr = sc.addAmr(amrConfig(rampProfile(), 600, mode));
    sc.runUntilFinished(amr, hours(60));
    return amr.stepAreaNodeSeconds();
  };
  EXPECT_GT(runMode(AmrApp::Mode::kStatic),
            1.3 * runMode(AmrApp::Mode::kDynamic));
}

TEST(AmrApp, SpontaneousUpdatesGetNodesBackFromPsa) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  AmrApp& amr = sc.addAmr(amrConfig(rampProfile(), 150));
  PsaApp::Config psaCfg;
  psaCfg.cluster = kC;
  psaCfg.taskDuration = sec(30);  // the run is only a few minutes long
  PsaApp& psa = sc.addPsa(psaCfg);
  sc.runUntilFinished(amr, hours(40));
  EXPECT_TRUE(amr.finished());
  // The AMR grew while the PSA was holding everything: the PSA must have
  // lost some tasks (spontaneous updates give it no warning).
  EXPECT_GT(psa.tasksKilled(), 0u);
  EXPECT_GT(psa.completedNodeSeconds(), 0.0);
  EXPECT_FALSE(psa.wasKilled());  // cooperative: never killed by the RMS
}

TEST(AmrApp, AnnouncedUpdatesIncreaseEndTime) {
  const auto sizes = rampProfile();
  auto runWith = [&](Time announce) {
    ScenarioConfig cfg;
    cfg.nodes = 200;
    Scenario sc(cfg);
    AmrApp& amr = sc.addAmr(amrConfig(sizes, 150, AmrApp::Mode::kDynamic,
                                      announce));
    sc.runUntilFinished(amr, hours(60));
    EXPECT_TRUE(amr.finished());
    return toSeconds(amr.endTime());
  };
  const double spontaneous = runWith(0);
  const double announced = runWith(sec(300));
  EXPECT_GT(announced, spontaneous);
}

TEST(AmrApp, PreallocationCapsGrowth) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  AmrApp& amr = sc.addAmr(amrConfig(rampProfile(), 40));
  sc.runUntilFinished(amr, hours(60));
  EXPECT_TRUE(amr.finished());
  for (const NodeCount n : amr.stepNodes()) EXPECT_LE(n, 40);
}

TEST(AmrApp, StepAreaMatchesMetricsRoughly) {
  ScenarioConfig cfg;
  cfg.nodes = 200;
  Scenario sc(cfg);
  AmrApp& amr = sc.addAmr(amrConfig(rampProfile(), 150));
  sc.runUntilFinished(amr, hours(40));
  const double measured = sc.metrics().allocatedNodeSeconds(
      amr.appId(), RequestType::kNonPreemptible);
  // Metrics integrate real holdings (including ~1 s update pauses), so
  // they exceed the model-level step area by a small margin only.
  EXPECT_GE(measured, amr.stepAreaNodeSeconds() * 0.99);
  EXPECT_LE(measured, amr.stepAreaNodeSeconds() * 1.25);
}

}  // namespace
}  // namespace coorm

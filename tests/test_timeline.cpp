#include "coorm/exp/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "coorm/exp/scenario.hpp"

namespace coorm {
namespace {

const AppId kApp{0};
const ClusterId kC{0};

TEST(Timeline, RecordsProfile) {
  TimelineRecorder recorder;
  recorder.onAllocationChanged(kApp, kC, 4, RequestType::kNonPreemptible,
                               sec(10));
  recorder.onAllocationChanged(kApp, kC, 2, RequestType::kNonPreemptible,
                               sec(20));
  recorder.onAllocationChanged(kApp, kC, -6, RequestType::kNonPreemptible,
                               sec(30));
  const StepFunction profile = recorder.profile(kApp);
  EXPECT_EQ(profile.at(sec(5)), 0);
  EXPECT_EQ(profile.at(sec(15)), 4);
  EXPECT_EQ(profile.at(sec(25)), 6);
  EXPECT_EQ(profile.at(sec(35)), 0);
}

TEST(Timeline, UnknownAppIsZeroProfile) {
  const TimelineRecorder recorder;
  EXPECT_TRUE(recorder.profile(AppId{42}).isZero());
}

TEST(Timeline, CoalescesSameInstantChanges) {
  TimelineRecorder recorder;
  recorder.onAllocationChanged(kApp, kC, 4, RequestType::kPreemptible, sec(1));
  recorder.onAllocationChanged(kApp, kC, -2, RequestType::kPreemptible,
                               sec(1));
  EXPECT_EQ(recorder.profile(kApp).at(sec(1)), 2);
}

TEST(Timeline, RenderProducesOneRowPerApp) {
  TimelineRecorder recorder;
  recorder.setName(AppId{0}, "alpha");
  recorder.setName(AppId{1}, "beta");
  recorder.onAllocationChanged(AppId{0}, kC, 8, RequestType::kNonPreemptible,
                               0);
  recorder.onAllocationChanged(AppId{1}, kC, 2, RequestType::kPreemptible,
                               sec(50));
  std::ostringstream out;
  recorder.render(out, 0, sec(100), 8, 20);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  // alpha holds the whole machine: densest glyph appears.
  EXPECT_NE(text.find('@'), std::string::npos);
}

TEST(Timeline, ScenarioIntegration) {
  ScenarioConfig cfg;
  cfg.nodes = 10;
  Scenario sc(cfg);
  RigidApp& rigid = sc.addRigid({kC, 4, sec(60)}, "myjob");
  sc.runFor(sec(120));
  ASSERT_TRUE(rigid.finished());
  const StepFunction profile = sc.timeline().profile(rigid.appId());
  EXPECT_EQ(profile.maxValue(), 4);
  std::ostringstream out;
  sc.timeline().render(out, 0, sec(120), 10);
  EXPECT_NE(out.str().find("myjob"), std::string::npos);
}

}  // namespace
}  // namespace coorm

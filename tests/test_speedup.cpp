// Speed-up model t(n,S) = A·S/n + B·n + C·S + D (§2.2).
#include <gtest/gtest.h>

#include "coorm/amr/speedup.hpp"

namespace coorm {
namespace {

TEST(Speedup, PaperConstants) {
  const SpeedupParams p = paperSpeedupParams();
  EXPECT_DOUBLE_EQ(p.a, 7.26e-3);
  EXPECT_DOUBLE_EQ(p.b, 1.23e-4);
  EXPECT_DOUBLE_EQ(p.c, 1.13e-6);
  EXPECT_DOUBLE_EQ(p.d, 1.38);
}

TEST(Speedup, FormulaMatchesByHand) {
  const SpeedupModel model;
  const double s = 1024.0;
  const NodeCount n = 4;
  const double expected =
      7.26e-3 * s / 4.0 + 1.23e-4 * 4.0 + 1.13e-6 * s + 1.38;
  EXPECT_DOUBLE_EQ(model.stepDuration(n, s), expected);
}

TEST(Speedup, SerialEfficiencyIsOne) {
  const SpeedupModel model;
  EXPECT_DOUBLE_EQ(model.efficiency(1, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(model.efficiency(1, 0.0), 1.0);
}

TEST(Speedup, EfficiencyDecreasesWithNodes) {
  const SpeedupModel model;
  const double s = 100.0 * 1024.0;
  double previous = 2.0;
  for (NodeCount n = 1; n <= 4096; n *= 2) {
    const double e = model.efficiency(n, s);
    EXPECT_LT(e, previous) << "n=" << n;
    EXPECT_GT(e, 0.0);
    previous = e;
  }
}

TEST(Speedup, StrongScalingHasAMinimum) {
  // For fixed S, duration first drops (A·S/n) then rises (B·n): there is a
  // sweet spot, as in the paper's Fig. 2 curves.
  const SpeedupModel model;
  const double s = 784.0 * 1024.0;
  double best = 1e300;
  NodeCount bestN = 0;
  for (NodeCount n = 1; n <= 65536; n *= 2) {
    const double t = model.stepDuration(n, s);
    if (t < best) {
      best = t;
      bestN = n;
    }
  }
  EXPECT_GT(bestN, 1);
  EXPECT_LT(bestN, 65536);
  EXPECT_GT(model.stepDuration(65536, s), best);
}

TEST(Speedup, LargerDataTakesLonger) {
  const SpeedupModel model;
  for (NodeCount n : {1, 16, 256, 4096}) {
    EXPECT_LT(model.stepDuration(n, 12.0 * 1024),
              model.stepDuration(n, 3136.0 * 1024));
  }
}

TEST(Speedup, NodesForEfficiencyRespectsTarget) {
  const SpeedupModel model;
  for (const double sizeMiB : {12.0 * 1024, 196.0 * 1024, kPaperSmaxMiB}) {
    for (const double target : {0.5, 0.75, 0.9}) {
      const NodeCount n = model.nodesForEfficiency(sizeMiB, target);
      EXPECT_GE(model.efficiency(n, sizeMiB), target);
      EXPECT_LT(model.efficiency(n + 1, sizeMiB), target);
    }
  }
}

TEST(Speedup, NodesForEfficiencyOfTinyDataIsSmall) {
  const SpeedupModel model;
  EXPECT_LE(model.nodesForEfficiency(0.0, 0.75), 4);
}

TEST(Speedup, PaperScaleSanity) {
  // At Smax and 75 % efficiency the equivalent allocation is around 1400
  // nodes — the paper sizes its machine as n = 1400·overcommit (§5.2).
  const SpeedupModel model;
  const NodeCount n = model.nodesForEfficiency(kPaperSmaxMiB, 0.75);
  EXPECT_GT(n, 1000);
  EXPECT_LT(n, 2000);
}

TEST(Speedup, StepAreaMatchesDefinition) {
  const SpeedupModel model;
  EXPECT_DOUBLE_EQ(model.stepArea(8, 1000.0),
                   8.0 * model.stepDuration(8, 1000.0));
}

TEST(Speedup, MonotoneAreaInNodes) {
  // n·t(n,S) grows with n: more nodes always consume more area.
  const SpeedupModel model;
  const double s = 48.0 * 1024;
  double previous = 0.0;
  for (NodeCount n = 1; n <= 1 << 14; n *= 2) {
    const double area = model.stepArea(n, s);
    EXPECT_GT(area, previous);
    previous = area;
  }
}

}  // namespace
}  // namespace coorm

// Speed-up model fitting (§2.2): recovery of the constants from data.
#include <gtest/gtest.h>

#include "coorm/amr/fitter.hpp"

namespace coorm {
namespace {

std::vector<NodeCount> gridNodes() {
  std::vector<NodeCount> nodes;
  for (NodeCount n = 1; n <= 16384; n *= 2) nodes.push_back(n);
  return nodes;
}

std::vector<double> gridSizes() {
  return {12 * 1024.0, 48 * 1024.0, 196 * 1024.0, 784 * 1024.0,
          3136 * 1024.0};
}

TEST(Fitter, ExactRecoveryFromNoiselessData) {
  Rng rng(1);
  const auto samples = SpeedupFitter::synthesize(paperSpeedupParams(),
                                                 gridNodes(), gridSizes(),
                                                 0.0, rng);
  const auto fitted = SpeedupFitter::fit(samples);
  ASSERT_TRUE(fitted.has_value());
  EXPECT_NEAR(fitted->a, 7.26e-3, 1e-8);
  EXPECT_NEAR(fitted->b, 1.23e-4, 1e-8);
  EXPECT_NEAR(fitted->c, 1.13e-6, 1e-10);
  EXPECT_NEAR(fitted->d, 1.38, 1e-5);
  EXPECT_LT(SpeedupFitter::maxRelativeError(*fitted, samples), 1e-6);
}

TEST(Fitter, NoisyRecoveryWithinPaperBound) {
  // The paper reports <15 % error on every point; with 10 % measurement
  // noise our fit must stay within that bound too.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const auto samples = SpeedupFitter::synthesize(paperSpeedupParams(),
                                                   gridNodes(), gridSizes(),
                                                   0.10, rng);
    const auto fitted = SpeedupFitter::fit(samples);
    ASSERT_TRUE(fitted.has_value());
    EXPECT_LT(SpeedupFitter::maxRelativeError(*fitted, samples), 0.15)
        << "seed " << seed;
  }
}

TEST(Fitter, TooFewSamplesFails) {
  std::vector<SpeedupSample> samples{{1, 100.0, 2.0}, {2, 100.0, 1.5}};
  EXPECT_FALSE(SpeedupFitter::fit(samples).has_value());
}

TEST(Fitter, DegenerateSamplesFail) {
  // Same point repeated: the normal equations are singular.
  std::vector<SpeedupSample> samples(8, SpeedupSample{4, 1000.0, 3.0});
  EXPECT_FALSE(SpeedupFitter::fit(samples).has_value());
}

TEST(Fitter, SynthesizeGridShape) {
  Rng rng(1);
  const auto samples = SpeedupFitter::synthesize(
      paperSpeedupParams(), {1, 2, 4}, {100.0, 200.0}, 0.0, rng);
  EXPECT_EQ(samples.size(), 6u);
  for (const auto& s : samples) EXPECT_GT(s.durationSeconds, 0.0);
}

TEST(Fitter, MaxRelativeErrorDefinition) {
  const SpeedupModel model;
  std::vector<SpeedupSample> samples{
      {1, 1000.0, model.stepDuration(1, 1000.0) * 1.10},
      {2, 1000.0, model.stepDuration(2, 1000.0)},
  };
  const double err =
      SpeedupFitter::maxRelativeError(paperSpeedupParams(), samples);
  EXPECT_NEAR(err, 0.10 / 1.10, 1e-9);
}

}  // namespace
}  // namespace coorm

// Algorithm 4: the main scheduling algorithm, exercised directly on request
// sets (no server, no simulator).
#include <gtest/gtest.h>

#include <memory>

#include "coorm/rms/scheduler.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

struct AppFixture {
  RequestSet pa, np, p;
  std::vector<std::unique_ptr<Request>> owned;

  Request* add(RequestSet& set, std::int64_t id, NodeCount nodes,
               Time duration, RequestType type,
               Relation how = Relation::kFree, Request* parent = nullptr) {
    auto r = std::make_unique<Request>();
    r->id = RequestId{id};
    r->cluster = kC;
    r->nodes = nodes;
    r->duration = duration;
    r->type = type;
    r->relatedHow = how;
    r->relatedTo = parent;
    set.add(r.get());
    owned.push_back(std::move(r));
    return owned.back().get();
  }

  AppSchedule schedule(AppId id) {
    AppSchedule s;
    s.app = id;
    s.preAllocations = &pa;
    s.nonPreemptible = &np;
    s.preemptible = &p;
    return s;
  }
};

TEST(MainSchedule, EmptySystem) {
  Scheduler scheduler(Machine::single(10));
  std::vector<AppSchedule> apps;
  scheduler.schedule(apps, 0);  // must not crash
}

TEST(MainSchedule, SingleAppSeesWholeMachineInNonPreemptiveView) {
  Scheduler scheduler(Machine::single(10));
  AppFixture app;
  std::vector<AppSchedule> apps{app.schedule(AppId{0})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(apps[0].nonPreemptiveView.at(kC, 0), 10);
  EXPECT_EQ(apps[0].preemptiveView.at(kC, 0), 10);
}

TEST(MainSchedule, PreallocationAndInnerNpScheduledTogether) {
  Scheduler scheduler(Machine::single(10));
  AppFixture app;
  Request* pa = app.add(app.pa, 1, 8, sec(100), RequestType::kPreAllocation);
  Request* np = app.add(app.np, 2, 4, sec(100), RequestType::kNonPreemptible,
                        Relation::kCoAlloc, pa);
  std::vector<AppSchedule> apps{app.schedule(AppId{0})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(pa->scheduledAt, 0);
  EXPECT_EQ(np->scheduledAt, 0);
  EXPECT_EQ(np->nAlloc, 4);
}

TEST(MainSchedule, PreallocatedButUnusedIsPreemptivelyVisible) {
  // The CooRMv2 key property: pre-allocated-but-unallocated resources can
  // be filled preemptibly by another application.
  Scheduler scheduler(Machine::single(10));
  AppFixture evolving;
  Request* pa =
      evolving.add(evolving.pa, 1, 8, sec(100), RequestType::kPreAllocation);
  pa->startedAt = 0;
  Request* np = evolving.add(evolving.np, 2, 3, sec(100),
                             RequestType::kNonPreemptible, Relation::kCoAlloc,
                             pa);
  np->startedAt = 0;
  np->nodeIds = {NodeId{kC, 0}, NodeId{kC, 1}, NodeId{kC, 2}};

  AppFixture malleable;
  std::vector<AppSchedule> apps{evolving.schedule(AppId{0}),
                                malleable.schedule(AppId{1})};
  scheduler.schedule(apps, 0);

  // Non-preemptively, the second app sees only the 2 non-preallocated
  // nodes.
  EXPECT_EQ(apps[1].nonPreemptiveView.at(kC, 0), 2);
  // Preemptively it sees everything the NP allocation leaves free: 7.
  EXPECT_EQ(apps[1].preemptiveView.at(kC, 0), 7);
}

TEST(MainSchedule, SecondPreallocationQueuesBehindFirst) {
  Scheduler scheduler(Machine::single(10));
  AppFixture first;
  first.add(first.pa, 1, 8, sec(100), RequestType::kPreAllocation);
  AppFixture second;
  Request* pa2 =
      second.add(second.pa, 2, 8, sec(50), RequestType::kPreAllocation);
  std::vector<AppSchedule> apps{first.schedule(AppId{0}),
                                second.schedule(AppId{1})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(pa2->scheduledAt, sec(100));  // "one after the other" (§4)
}

TEST(MainSchedule, NonPreemptibleViewExcludesOthersPreallocations) {
  Scheduler scheduler(Machine::single(10));
  AppFixture first;
  Request* pa =
      first.add(first.pa, 1, 6, sec(100), RequestType::kPreAllocation);
  pa->startedAt = 0;
  AppFixture second;
  std::vector<AppSchedule> apps{first.schedule(AppId{0}),
                                second.schedule(AppId{1})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(apps[1].nonPreemptiveView.at(kC, 0), 4);
  EXPECT_EQ(apps[1].nonPreemptiveView.at(kC, sec(100)), 10);
  // The owner still sees its own pre-allocation as usable.
  EXPECT_EQ(apps[0].nonPreemptiveView.at(kC, 0), 10);
}

TEST(MainSchedule, StartedNpReducesPreemptiveCapacity) {
  Scheduler scheduler(Machine::single(10));
  AppFixture app;
  Request* np =
      app.add(app.np, 1, 4, sec(100), RequestType::kNonPreemptible);
  np->startedAt = 0;
  np->nodeIds = {NodeId{kC, 0}, NodeId{kC, 1}, NodeId{kC, 2}, NodeId{kC, 3}};
  AppFixture other;
  std::vector<AppSchedule> apps{app.schedule(AppId{0}),
                                other.schedule(AppId{1})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(apps[1].preemptiveView.at(kC, 0), 6);
  EXPECT_EQ(apps[1].preemptiveView.at(kC, sec(100)), 10);
}

TEST(MainSchedule, FutureNpGrowthYanksPreemptibleAtTheRightTime) {
  // An evolving app's started NP request has a fixed NEXT successor that
  // grows at t=60: preemptive capacity must drop exactly then.
  Scheduler scheduler(Machine::single(10));
  AppFixture app;
  Request* np = app.add(app.np, 1, 2, sec(60), RequestType::kNonPreemptible);
  np->startedAt = 0;
  np->nodeIds = {NodeId{kC, 0}, NodeId{kC, 1}};
  app.add(app.np, 2, 7, sec(60), RequestType::kNonPreemptible,
          Relation::kNext, np);
  AppFixture psa;
  std::vector<AppSchedule> apps{app.schedule(AppId{0}),
                                psa.schedule(AppId{1})};
  scheduler.schedule(apps, 0);
  EXPECT_EQ(apps[1].preemptiveView.at(kC, 0), 8);
  EXPECT_EQ(apps[1].preemptiveView.at(kC, sec(60)), 3);
  EXPECT_EQ(apps[1].preemptiveView.at(kC, sec(120)), 10);
}

TEST(MainSchedule, ConnectionOrderIsPriorityOrder) {
  Scheduler scheduler(Machine::single(10));
  AppFixture a;
  Request* ra = a.add(a.pa, 1, 10, sec(10), RequestType::kPreAllocation);
  AppFixture b;
  Request* rb = b.add(b.pa, 2, 10, sec(10), RequestType::kPreAllocation);
  std::vector<AppSchedule> apps{a.schedule(AppId{0}), b.schedule(AppId{1})};
  scheduler.schedule(apps, sec(5));
  EXPECT_EQ(ra->scheduledAt, sec(5));
  EXPECT_EQ(rb->scheduledAt, sec(15));
}

TEST(MainSchedule, MachineViewHasAllClusters) {
  Machine machine;
  machine.clusters.push_back({ClusterId{0}, 4});
  machine.clusters.push_back({ClusterId{1}, 6});
  Scheduler scheduler(machine);
  const View v = scheduler.machineView();
  EXPECT_EQ(v.at(ClusterId{0}, 0), 4);
  EXPECT_EQ(v.at(ClusterId{1}, 0), 6);
}

}  // namespace
}  // namespace coorm

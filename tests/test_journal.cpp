// Journal corruption suite: the recovery policy of rms/journal.hpp is
// deliberately asymmetric, and these tests pin both sides of it.
//
//  - A *torn tail* (crash mid-append: missing framing bytes, or a record
//    whose payload runs past EOF) recovers the longest valid prefix, and
//    reopening truncates the tail away.
//  - Corruption *at rest* (bad header, absurd length, CRC mismatch on a
//    complete record, garbage between records) refuses with a diagnostic:
//    rebuilding scheduler state from a lying log is worse than not
//    starting.
//
// The fuzz-style cases sweep every truncation point and seeded random bit
// flips: scans must be deterministic, never crash, and classify every
// mutation as exactly one of {clean, torn-tail recovery, refusal}.
#include "coorm/rms/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace coorm::rms {
namespace {

using Bytes = std::vector<std::uint8_t>;

std::string tempPath(const std::string& name) {
  return testing::TempDir() + "coorm_journal_" + name + ".bin";
}

Bytes readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const Bytes& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A journal with `count` records of varied sizes and recognizable
/// contents; returns the payloads written.
std::vector<Bytes> buildJournal(const std::string& path, int count) {
  std::remove(path.c_str());
  Journal journal(path, 0);
  std::vector<Bytes> payloads;
  for (int i = 0; i < count; ++i) {
    Bytes payload(static_cast<std::size_t>(1 + (i * 7) % 40),
                  static_cast<std::uint8_t>(i + 1));
    journal.append(payload);
    payloads.push_back(std::move(payload));
  }
  journal.sync();
  return payloads;
}

TEST(Journal, FreshFileScansEmpty) {
  const std::string path = tempPath("fresh");
  std::remove(path.c_str());
  const ScanResult scan = Journal::scan(path);
  EXPECT_FALSE(scan.refused);
  EXPECT_FALSE(scan.truncatedTail);
  EXPECT_TRUE(scan.records.empty());
}

TEST(Journal, RoundTrip) {
  const std::string path = tempPath("roundtrip");
  const std::vector<Bytes> payloads = buildJournal(path, 5);
  const ScanResult scan = Journal::scan(path);
  EXPECT_FALSE(scan.refused);
  EXPECT_FALSE(scan.truncatedTail);
  ASSERT_EQ(scan.records.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(scan.records[i], payloads[i]) << "record " << i;
  }
}

TEST(Journal, TruncatedTailRecoversLongestValidPrefix) {
  const std::string path = tempPath("torntail");
  const std::vector<Bytes> payloads = buildJournal(path, 3);
  Bytes file = readFile(path);
  // Chop 3 bytes off the last record's payload: the crash-mid-append
  // signature.
  file.resize(file.size() - 3);
  writeFile(path, file);

  const ScanResult scan = Journal::scan(path);
  EXPECT_FALSE(scan.refused) << scan.diagnostic;
  EXPECT_TRUE(scan.truncatedTail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], payloads[0]);
  EXPECT_EQ(scan.records[1], payloads[1]);

  // Reopening at validBytes drops the tail; appending continues cleanly.
  {
    Journal journal(path, scan.validBytes);
    journal.append(payloads[0]);
    journal.sync();
  }
  const ScanResult rescan = Journal::scan(path);
  EXPECT_FALSE(rescan.refused);
  EXPECT_FALSE(rescan.truncatedTail);
  ASSERT_EQ(rescan.records.size(), 3u);
  EXPECT_EQ(rescan.records[2], payloads[0]);
}

TEST(Journal, TornHeaderRecoversEmpty) {
  const std::string path = tempPath("tornheader");
  buildJournal(path, 1);
  Bytes file = readFile(path);
  file.resize(4);  // crash while writing the very header
  writeFile(path, file);
  const ScanResult scan = Journal::scan(path);
  EXPECT_FALSE(scan.refused);
  EXPECT_TRUE(scan.truncatedTail);
  EXPECT_TRUE(scan.records.empty());
}

TEST(Journal, BitFlippedRecordRefusesWithDiagnostic) {
  const std::string path = tempPath("bitflip");
  buildJournal(path, 3);
  Bytes file = readFile(path);
  // Flip one bit inside the first record's payload (header + len + crc
  // precede it): the record is complete, so the CRC mismatch means
  // corruption at rest.
  file[8 + 8] ^= 0x40;
  writeFile(path, file);

  const ScanResult scan = Journal::scan(path);
  EXPECT_TRUE(scan.refused);
  EXPECT_NE(scan.diagnostic.find("CRC mismatch"), std::string::npos)
      << scan.diagnostic;
}

TEST(Journal, InterleavedGarbageRefuses) {
  const std::string path = tempPath("garbage");
  buildJournal(path, 2);
  Bytes file = readFile(path);
  // Splice 16 bytes of 0xFF between the two records: the scanner reads an
  // absurd length where the second record's framing should be.
  const std::size_t firstRecord = 8 + 8 + 1;  // header + framing + payload[1]
  file.insert(file.begin() + static_cast<std::ptrdiff_t>(firstRecord), 16,
              std::uint8_t{0xFF});
  writeFile(path, file);

  const ScanResult scan = Journal::scan(path);
  EXPECT_TRUE(scan.refused);
  EXPECT_NE(scan.diagnostic.find("absurd record length"), std::string::npos)
      << scan.diagnostic;
}

TEST(Journal, BadMagicRefuses) {
  const std::string path = tempPath("badmagic");
  buildJournal(path, 1);
  Bytes file = readFile(path);
  file[0] ^= 0xFF;
  writeFile(path, file);
  const ScanResult scan = Journal::scan(path);
  EXPECT_TRUE(scan.refused);
  EXPECT_FALSE(scan.diagnostic.empty());
}

TEST(Journal, BadVersionRefuses) {
  const std::string path = tempPath("badversion");
  buildJournal(path, 1);
  Bytes file = readFile(path);
  file[7] = 0x7F;  // header version (big-endian u32 at offset 4)
  writeFile(path, file);
  const ScanResult scan = Journal::scan(path);
  EXPECT_TRUE(scan.refused);
  EXPECT_FALSE(scan.diagnostic.empty());
}

TEST(Journal, CompactReplacesLogWithOneSnapshotRecord) {
  const std::string path = tempPath("compact");
  buildJournal(path, 20);
  const Bytes snapshot = {8, 1, 2, 3, 4, 5};  // any payload will do
  {
    const ScanResult scan = Journal::scan(path);
    Journal journal(path, scan.validBytes);
    const std::uint64_t before = journal.bytes();
    journal.compact(snapshot);
    EXPECT_LT(journal.bytes(), before);
  }
  const ScanResult scan = Journal::scan(path);
  EXPECT_FALSE(scan.refused);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], snapshot);
}

// Every possible truncation point is a crash the journal must recover
// from: never refused, records = the fully-contained prefix, and the
// recovered prefix itself rescans byte-identically.
TEST(Journal, FuzzEveryTruncationPointRecovers) {
  const std::string path = tempPath("fuzztrunc");
  buildJournal(path, 12);
  const Bytes file = readFile(path);
  const std::string cutPath = tempPath("fuzztrunc_cut");
  for (std::size_t cut = 0; cut < file.size(); ++cut) {
    writeFile(cutPath, Bytes(file.begin(),
                             file.begin() + static_cast<std::ptrdiff_t>(cut)));
    const ScanResult scan = Journal::scan(cutPath);
    ASSERT_FALSE(scan.refused)
        << "cut at " << cut << ": " << scan.diagnostic;
    ASSERT_LE(scan.validBytes, cut);
    // The recovered prefix must be self-consistent: scanning exactly
    // validBytes yields the same records with nothing torn.
    writeFile(cutPath,
              Bytes(file.begin(),
                    file.begin() + static_cast<std::ptrdiff_t>(scan.validBytes)));
    const ScanResult again = Journal::scan(cutPath);
    ASSERT_FALSE(again.refused);
    ASSERT_FALSE(again.truncatedTail) << "cut at " << cut;
    ASSERT_EQ(again.records, scan.records) << "cut at " << cut;
  }
}

// Seeded random single-byte mutations: a scan must never crash, must be
// deterministic (two scans agree), and must never silently accept a
// mutation that changes decoded content without either recovering a
// shorter prefix or refusing.
TEST(Journal, FuzzRandomByteFlipsClassifyDeterministically) {
  const std::string path = tempPath("fuzzflip");
  const std::vector<Bytes> payloads = buildJournal(path, 12);
  const Bytes file = readFile(path);
  const std::string flipPath = tempPath("fuzzflip_mut");

  std::uint64_t rng = 0x2545F4914F6CDD1Dull;  // fixed seed: reproducible
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  for (int i = 0; i < 500; ++i) {
    Bytes mutated = file;
    const std::size_t at = next() % mutated.size();
    const std::uint8_t bit = static_cast<std::uint8_t>(1u << (next() % 8));
    mutated[at] ^= bit;
    writeFile(flipPath, mutated);

    const ScanResult scan = Journal::scan(flipPath);
    const ScanResult again = Journal::scan(flipPath);
    ASSERT_EQ(scan.refused, again.refused) << "flip at " << at;
    ASSERT_EQ(scan.truncatedTail, again.truncatedTail) << "flip at " << at;
    ASSERT_EQ(scan.records, again.records) << "flip at " << at;

    if (!scan.refused) {
      // Whatever survived must be untouched original payloads: a flip can
      // shorten the valid prefix (length-field damage looks like a torn
      // tail) but must never alter recovered content.
      ASSERT_LE(scan.records.size(), payloads.size());
      for (std::size_t r = 0; r < scan.records.size(); ++r) {
        ASSERT_EQ(scan.records[r], payloads[r])
            << "flip at " << at << " corrupted recovered record " << r;
      }
    }
  }
}

}  // namespace
}  // namespace coorm::rms

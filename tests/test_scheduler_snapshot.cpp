// Differential suite for the snapshot-consuming scheduler (ISSUE 4).
//
// The representation refactor promises that `toView`/`fit` on an indexed
// RequestSetSnapshot are *bit-identical* to the pre-refactor algorithms
// that walked the live RequestSet (re-scanning the whole set per
// children()/contains() lookup). The pre-refactor implementations are kept
// here verbatim as references; the suite pins the snapshot path against
// them on randomized sets and on deep 64/128-request constraint chains,
// and additionally pins — via FitStats — that a deep-chain fit now costs
// *linear* work where the live walk cost quadratic.
//
// (eqSchedule semantics are pinned separately against the seed's
// per-breakpoint reference in test_scheduler_eq.cpp, and whole-pass
// composition against the binary-algebra reference in
// test_scheduler_parallel.cpp — both run the refactored building blocks.)
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coorm/common/rng.hpp"
#include "coorm/rms/scheduler.hpp"

namespace coorm {
namespace {

// --- pre-refactor reference implementations --------------------------------

NodeCount refGrantAtStart(const View& view, const Request& r, Time at) {
  if (isInf(at)) return 0;
  return std::clamp<NodeCount>(view.at(r.cluster, at), 0, r.nodes);
}

void refAddOccupation(View& view, const Request& r) {
  if (isInf(r.scheduledAt) || r.nAlloc <= 0 || r.duration <= 0) return;
  view.capRef(r.cluster).addPulse(r.scheduledAt, r.duration, r.nAlloc);
}

/// Algorithm 1 as of PR 3: pointer walk over the live set.
View referenceToView(const RequestSet& set, const View* available = nullptr,
                     Time now = 0) {
  View out;
  for (Request* r : set) r->fixed = false;

  std::vector<Request*> queue;
  queue.reserve(set.size());
  for (Request* r : set) {
    if (r->started()) queue.push_back(r);
  }

  for (std::size_t head = 0; head < queue.size(); ++head) {
    Request* r = queue[head];
    if (r->fixed) continue;

    if (r->started()) {
      r->scheduledAt = r->startedAt;
    } else {
      const Request* parent = r->relatedTo;
      switch (r->relatedHow) {
        case Relation::kNext:
          r->scheduledAt = satAdd(parent->scheduledAt, parent->duration);
          break;
        case Relation::kCoAlloc:
          r->scheduledAt = parent->scheduledAt;
          break;
        case Relation::kFree:
          continue;
      }
    }

    if (r->started() && r->type == RequestType::kPreemptible) {
      r->nAlloc = std::ssize(r->nodeIds);
    } else if (available != nullptr &&
               r->type == RequestType::kPreemptible) {
      r->nAlloc = refGrantAtStart(*available, *r,
                                  std::max(r->scheduledAt, now));
    } else if (available != nullptr) {
      r->nAlloc = available->alloc(r->cluster, r->scheduledAt, r->duration,
                                   r->nodes);
    } else {
      r->nAlloc = r->nodes;
    }
    r->fixed = true;
    refAddOccupation(out, *r);

    set.forEachChild(*r, [&](Request* child) { queue.push_back(child); });
  }
  return out;
}

/// Algorithm 2 as of PR 3: live walk, full set scan per children() lookup.
View referenceFit(const RequestSet& set, const View& available, Time t0) {
  std::vector<Request*> queue;
  queue.reserve(set.size() * 2 + 8);
  std::size_t nonFixed = 0;
  for (Request* r : set) {
    if (r->fixed) continue;
    r->earliestScheduleAt = t0;
    r->scheduledAt = kTimeInf;
    r->nAlloc = 0;
    ++nonFixed;
  }
  set.forEachRoot([&](Request* r) { queue.push_back(r); });

  std::size_t budget = 64 * (nonFixed + set.size() + 1);

  for (std::size_t head = 0; head < queue.size() && budget > 0; ++head) {
    --budget;
    Request* r = queue[head];

    if (r->fixed) {
      set.forEachChild(*r, [&](Request* child) { queue.push_back(child); });
      continue;
    }

    Request* parent = r->relatedTo;
    r->nAlloc = r->nodes;
    const Time before = r->scheduledAt;

    switch (r->relatedHow) {
      case Relation::kFree: {
        if (r->type == RequestType::kPreemptible) {
          r->scheduledAt = available.findHole(r->cluster, 1, msec(1),
                                              r->earliestScheduleAt);
          r->nAlloc = refGrantAtStart(available, *r, r->scheduledAt);
        } else {
          r->scheduledAt = available.findHole(
              r->cluster, r->nodes, r->duration, r->earliestScheduleAt);
        }
        break;
      }
      case Relation::kCoAlloc: {
        if (parent == nullptr) break;
        if (r->type == RequestType::kPreemptible &&
            parent->type != RequestType::kPreemptible) {
          r->scheduledAt = parent->scheduledAt;
          r->nAlloc = refGrantAtStart(available, *r, r->scheduledAt);
        } else {
          r->scheduledAt = available.findHole(
              r->cluster, r->nodes, r->duration,
              std::max(parent->scheduledAt, r->earliestScheduleAt));
          if (r->scheduledAt != parent->scheduledAt && !parent->fixed &&
              set.contains(parent)) {
            parent->earliestScheduleAt = r->scheduledAt;
            queue.push_back(parent);
          }
        }
        break;
      }
      case Relation::kNext: {
        if (parent == nullptr) break;
        const Time parentEnd = satAdd(parent->scheduledAt, parent->duration);
        if (r->type == RequestType::kPreemptible) {
          r->scheduledAt = parentEnd;
          r->nAlloc = refGrantAtStart(available, *r, r->scheduledAt);
        } else {
          r->scheduledAt = available.findHole(
              r->cluster, r->nodes, r->duration,
              std::max(parentEnd, r->earliestScheduleAt));
          if (r->scheduledAt != parentEnd && !parent->fixed &&
              set.contains(parent)) {
            parent->earliestScheduleAt =
                satSub(r->scheduledAt, parent->duration);
            queue.push_back(parent);
          }
        }
        break;
      }
    }

    if (before != r->scheduledAt) {
      set.forEachChild(*r, [&](Request* child) { queue.push_back(child); });
    }
  }

  View out;
  for (Request* r : set) {
    if (!r->fixed) refAddOccupation(out, *r);
  }
  return out;
}

// --- randomized populations -------------------------------------------------

struct Population {
  std::vector<std::unique_ptr<Request>> owned;
  RequestSet pa, np, p;
  View avail;
  Time now = 0;
};

/// One application's worth of sets with mixed types, constraints (including
/// cross-set anchors), started requests and chains; plus an availability
/// view with dips (sometimes negative stretches).
std::unique_ptr<Population> makePopulation(std::uint64_t seed,
                                           int chainDepth = 0) {
  Rng rng(seed);
  auto pop = std::make_unique<Population>();
  const int nclusters = static_cast<int>(rng.uniformInt(1, 4));

  const auto add = [&](RequestSet& set, RequestType type, Relation how,
                       Request* parent) -> Request* {
    auto r = std::make_unique<Request>();
    r->id = RequestId{static_cast<std::int64_t>(pop->owned.size() + 1)};
    r->cluster = ClusterId{static_cast<std::int32_t>(
        rng.uniformInt(0, nclusters - 1))};
    r->nodes = rng.uniformInt(1, 12);
    r->duration = rng.uniformInt(0, 4) == 0 ? kTimeInf
                                            : sec(rng.uniformInt(10, 900));
    r->type = type;
    r->relatedHow = how;
    r->relatedTo = parent;
    set.add(r.get());
    pop->owned.push_back(std::move(r));
    return pop->owned.back().get();
  };

  Request* prealloc = nullptr;
  if (rng.uniformInt(0, 2) != 0) {
    prealloc = add(pop->pa, RequestType::kPreAllocation, Relation::kFree,
                   nullptr);
    if (rng.uniformInt(0, 2) == 0) prealloc->startedAt = sec(rng.uniformInt(0, 40));
  }

  const int chain = chainDepth > 0 ? chainDepth
                                   : static_cast<int>(rng.uniformInt(0, 6));
  Request* inner = nullptr;
  for (int k = 0; k < chain; ++k) {
    Relation how = Relation::kFree;
    Request* parent = nullptr;
    if (k == 0 && prealloc != nullptr) {
      how = Relation::kCoAlloc;
      parent = prealloc;
    } else if (inner != nullptr) {
      how = rng.uniformInt(0, 1) == 0 ? Relation::kNext : Relation::kCoAlloc;
      parent = inner;
    }
    inner = add(pop->np, RequestType::kNonPreemptible, how, parent);
    if (k == 0 && parent == nullptr && rng.uniformInt(0, 3) == 0) {
      inner->startedAt = sec(rng.uniformInt(0, 30));
    }
  }

  Request* prevPre = nullptr;
  const int npre = static_cast<int>(rng.uniformInt(0, 4));
  for (int k = 0; k < npre; ++k) {
    Request* r = add(pop->p, RequestType::kPreemptible, Relation::kFree,
                     nullptr);
    if (prevPre != nullptr && rng.uniformInt(0, 2) == 0) {
      r->relatedHow =
          rng.uniformInt(0, 1) == 0 ? Relation::kNext : Relation::kCoAlloc;
      r->relatedTo = prevPre;
    } else if (inner != nullptr && rng.uniformInt(0, 3) == 0) {
      // Cross-set anchor: preemptible chained to a non-preemptible request.
      r->relatedHow = Relation::kCoAlloc;
      r->relatedTo = inner;
    } else if (rng.uniformInt(0, 1) == 0) {
      r->startedAt = sec(rng.uniformInt(0, 50));
      const NodeCount held = rng.uniformInt(1, r->nodes);
      for (NodeCount n = 0; n < held; ++n) {
        r->nodeIds.push_back(
            NodeId{r->cluster, static_cast<std::int32_t>(k * 100 + n)});
      }
    }
    prevPre = r;
  }

  for (int c = 0; c < nclusters; ++c) {
    StepFunction cap = StepFunction::constant(rng.uniformInt(8, 48));
    const int dips = static_cast<int>(rng.uniformInt(0, 3));
    for (int d = 0; d < dips; ++d) {
      cap -= StepFunction::pulse(
          sec(rng.uniformInt(0, 400)),
          rng.uniformInt(0, 3) == 0 ? kTimeInf : sec(rng.uniformInt(30, 300)),
          rng.uniformInt(1, 24));
    }
    pop->avail.setCap(ClusterId{c}, std::move(cap));
  }
  pop->now = sec(rng.uniformInt(0, 60));
  return pop;
}

void expectRequestsIdentical(const Population& a, const Population& b) {
  ASSERT_EQ(a.owned.size(), b.owned.size());
  for (std::size_t i = 0; i < a.owned.size(); ++i) {
    const Request& ra = *a.owned[i];
    const Request& rb = *b.owned[i];
    EXPECT_EQ(ra.scheduledAt, rb.scheduledAt) << "request " << i;
    EXPECT_EQ(ra.nAlloc, rb.nAlloc) << "request " << i;
    EXPECT_EQ(ra.fixed, rb.fixed) << "request " << i;
    EXPECT_EQ(ra.earliestScheduleAt, rb.earliestScheduleAt) << "request " << i;
  }
}

// --- differential tests -----------------------------------------------------

TEST(SchedulerSnapshot, ToViewMatchesLiveWalkReference) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto snapPop = makePopulation(seed);
    auto refPop = makePopulation(seed);
    for (RequestSet Population::* sets :
         {&Population::pa, &Population::np, &Population::p}) {
      const View vs = Scheduler::toView(snapPop.get()->*sets,
                                        &snapPop->avail, snapPop->now);
      const View vr = referenceToView(refPop.get()->*sets, &refPop->avail,
                                      refPop->now);
      EXPECT_EQ(vs, vr);
    }
    expectRequestsIdentical(*snapPop, *refPop);
  }
}

TEST(SchedulerSnapshot, FitMatchesLiveWalkReference) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto snapPop = makePopulation(seed);
    auto refPop = makePopulation(seed);
    for (RequestSet Population::* sets :
         {&Population::pa, &Population::np, &Population::p}) {
      // toView first, as every pass does: fit honours the fixed markers.
      Scheduler::toView(snapPop.get()->*sets, &snapPop->avail, snapPop->now);
      referenceToView(refPop.get()->*sets, &refPop->avail, refPop->now);
      const View vs =
          Scheduler::fit(snapPop.get()->*sets, snapPop->avail, snapPop->now);
      const View vr =
          referenceFit(refPop.get()->*sets, refPop->avail, refPop->now);
      EXPECT_EQ(vs, vr);
    }
    expectRequestsIdentical(*snapPop, *refPop);
  }
}

TEST(SchedulerSnapshot, DeepChainsMatchReference) {
  for (const int depth : {64, 128}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " seed=" + std::to_string(seed));
      auto snapPop = makePopulation(seed, depth);
      auto refPop = makePopulation(seed, depth);
      const View vs =
          Scheduler::fit(snapPop->np, snapPop->avail, snapPop->now);
      const View vr = referenceFit(refPop->np, refPop->avail, refPop->now);
      EXPECT_EQ(vs, vr);
      expectRequestsIdentical(*snapPop, *refPop);
    }
  }
}

TEST(SchedulerSnapshot, DeepChainFitWorkIsLinear) {
  // A conflict-free NEXT chain on an empty machine: every record is placed
  // right where its parent ends, so the worklist processes each exactly
  // once and traverses each constraint edge exactly once. Doubling the
  // chain must exactly double the work — the live walk re-scanned the set
  // per children() lookup, so its total work grew quadratically.
  FitStats stats64, stats128, stats256;
  for (auto [depth, stats] : {std::pair<int, FitStats*>{64, &stats64},
                              std::pair<int, FitStats*>{128, &stats128},
                              std::pair<int, FitStats*>{256, &stats256}}) {
    std::vector<std::unique_ptr<Request>> owned;
    RequestSet np;
    Request* prev = nullptr;
    for (int i = 0; i < depth; ++i) {
      auto r = std::make_unique<Request>();
      r->id = RequestId{i + 1};
      r->cluster = ClusterId{0};
      r->nodes = 2;
      r->duration = sec(60);
      r->type = RequestType::kNonPreemptible;
      r->relatedHow = prev == nullptr ? Relation::kFree : Relation::kNext;
      r->relatedTo = prev;
      np.add(r.get());
      prev = r.get();
      owned.push_back(std::move(r));
    }
    View machine;
    machine.setCap(ClusterId{0}, StepFunction::constant(4096));
    AppSnapshot snap(AppId{0}, nullptr, &np, nullptr);
    Scheduler::fit(snap.nonPreemptible(), machine, 0, stats);
    EXPECT_EQ(stats->queuePops, static_cast<std::size_t>(depth));
    EXPECT_EQ(stats->childVisits, static_cast<std::size_t>(depth - 1));
    EXPECT_EQ(stats->parentRepushes, 0u);
  }
  // Linear scaling, pinned exactly: 2x the chain is 2x the work.
  EXPECT_EQ(stats128.queuePops, 2 * stats64.queuePops);
  EXPECT_EQ(stats256.queuePops, 2 * stats128.queuePops);
}

TEST(SchedulerSnapshot, ShimsComposeLikeInPlaceAlgorithms) {
  // The live-set shims freeze, run and write back; composing them
  // sequentially (toView then fit then toView again) must behave exactly
  // like the in-place reference composition.
  for (std::uint64_t seed = 50; seed <= 70; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    auto snapPop = makePopulation(seed);
    auto refPop = makePopulation(seed);

    View vs = Scheduler::toView(snapPop->np);
    vs += Scheduler::fit(snapPop->np, snapPop->avail, snapPop->now);
    const View vs2 = Scheduler::toView(snapPop->np, &snapPop->avail,
                                       snapPop->now);

    View vr = referenceToView(refPop->np);
    vr += referenceFit(refPop->np, refPop->avail, refPop->now);
    const View vr2 = referenceToView(refPop->np, &refPop->avail, refPop->now);

    EXPECT_EQ(vs, vr);
    EXPECT_EQ(vs2, vr2);
    expectRequestsIdentical(*snapPop, *refPop);
  }
}

}  // namespace
}  // namespace coorm

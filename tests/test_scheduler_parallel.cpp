// Differential property suite for the parallel scheduler (ISSUE 3).
//
// The worker-pool refactor promises that `schedule`/`eqSchedule` output is
// *bit-identical* across thread counts: every request attribute and every
// view entry, compared with operator== (not just semantic sameAs). The
// suite pins that on randomized multi-cluster populations (cluster counts
// 1–8, varying app counts, NEXT/COALLOC chains, started and pending
// requests), and additionally checks the refactored serial path against a
// pre-refactor reference built from binary view algebra.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <vector>

#include "coorm/common/rng.hpp"
#include "coorm/common/worker_pool.hpp"
#include "coorm/rms/scheduler.hpp"

namespace coorm {
namespace {

struct Population {
  Machine machine;
  std::vector<std::unique_ptr<Request>> owned;
  std::vector<std::unique_ptr<RequestSet>> sets;
  std::vector<AppSchedule> apps;
  bool strict = false;
  Time now = 0;
};

/// Deterministic randomized population: same seed, same population —
/// that is what makes the differential comparison meaningful.
Population makePopulation(std::uint64_t seed) {
  Rng rng(seed);
  Population p;
  const int nclusters = static_cast<int>(rng.uniformInt(1, 8));
  const int napps = static_cast<int>(rng.uniformInt(1, 10));
  for (int c = 0; c < nclusters; ++c) {
    p.machine.clusters.push_back(
        {ClusterId{c}, rng.uniformInt(8, 64)});
  }

  std::int64_t nextId = 1;
  const auto add = [&](RequestSet* set, ClusterId cid, NodeCount nodes,
                       Time duration, RequestType type, Relation how,
                       Request* parent) -> Request* {
    auto r = std::make_unique<Request>();
    r->id = RequestId{nextId++};
    r->cluster = cid;
    r->nodes = nodes;
    r->duration = duration;
    r->type = type;
    r->relatedHow = how;
    r->relatedTo = parent;
    set->add(r.get());
    p.owned.push_back(std::move(r));
    return p.owned.back().get();
  };

  for (int a = 0; a < napps; ++a) {
    p.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* pa = p.sets.back().get();
    p.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* np = p.sets.back().get();
    p.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* pre = p.sets.back().get();

    const ClusterId home{static_cast<std::int32_t>(
        rng.uniformInt(0, nclusters - 1))};

    Request* prealloc = nullptr;
    if (rng.uniformInt(0, 2) != 0) {
      prealloc = add(pa, home, rng.uniformInt(2, 16),
                     sec(rng.uniformInt(600, 7200)),
                     RequestType::kPreAllocation, Relation::kFree, nullptr);
      if (rng.uniformInt(0, 3) == 0) {
        prealloc->startedAt = sec(rng.uniformInt(0, 30));
      }
    }

    // NP chain inside (or independent of) the pre-allocation, mixing NEXT
    // and COALLOC constraints.
    Request* inner = nullptr;
    const int chain = static_cast<int>(rng.uniformInt(0, 4));
    for (int k = 0; k < chain; ++k) {
      Relation how = Relation::kFree;
      Request* parent = nullptr;
      if (k == 0 && prealloc != nullptr) {
        how = Relation::kCoAlloc;
        parent = prealloc;
      } else if (inner != nullptr) {
        how = rng.uniformInt(0, 1) == 0 ? Relation::kNext : Relation::kCoAlloc;
        parent = inner;
      }
      inner = add(np, home, rng.uniformInt(1, 8),
                  sec(rng.uniformInt(300, 3600)),
                  RequestType::kNonPreemptible, how, parent);
    }

    // Preemptible requests: FREE or chained, some already started and
    // holding node IDs. Occasionally one sits on a cluster the machine
    // does not manage (a drained cluster): its occupation has no matching
    // availability profile, the edge the per-cluster sweep must keep
    // handling.
    Request* prevPre = nullptr;
    const int npre = static_cast<int>(rng.uniformInt(0, 3));
    for (int k = 0; k < npre; ++k) {
      ClusterId cid = home;
      if (rng.uniformInt(0, 5) == 0) {
        cid = ClusterId{static_cast<std::int32_t>(
            rng.uniformInt(0, nclusters - 1))};
      }
      const bool drained = rng.uniformInt(0, 9) == 0;
      if (drained) cid = ClusterId{nclusters};
      Request* r = add(pre, cid, rng.uniformInt(1, 12),
                       rng.uniformInt(0, 3) == 0
                           ? kTimeInf
                           : sec(rng.uniformInt(60, 1200)),
                       RequestType::kPreemptible, Relation::kFree, nullptr);
      if (prevPre != nullptr && rng.uniformInt(0, 2) == 0) {
        r->relatedHow =
            rng.uniformInt(0, 1) == 0 ? Relation::kNext : Relation::kCoAlloc;
        r->relatedTo = prevPre;
      } else if (rng.uniformInt(0, 1) == 0) {
        r->startedAt = sec(rng.uniformInt(0, 50));
        const NodeCount held = rng.uniformInt(1, r->nodes);
        for (NodeCount n = 0; n < held; ++n) {
          r->nodeIds.push_back(NodeId{
              r->cluster, static_cast<std::int32_t>(a * 100 + n)});
        }
      }
      prevPre = r;
    }

    AppSchedule app;
    app.app = AppId{a};
    app.preAllocations = pa;
    app.nonPreemptible = np;
    app.preemptible = pre;
    p.apps.push_back(std::move(app));
  }
  p.strict = rng.uniformInt(0, 3) == 0;
  p.now = sec(rng.uniformInt(0, 100));
  return p;
}

/// Bit-level comparison of two populations built from the same seed after
/// scheduling: every request attribute and the exact view representation
/// (operator==, not sameAs — entries must match cluster for cluster).
void expectIdentical(const Population& a, const Population& b,
                     const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.owned.size(), b.owned.size());
  for (std::size_t i = 0; i < a.owned.size(); ++i) {
    const Request& ra = *a.owned[i];
    const Request& rb = *b.owned[i];
    EXPECT_EQ(ra.scheduledAt, rb.scheduledAt) << "request " << i;
    EXPECT_EQ(ra.nAlloc, rb.nAlloc) << "request " << i;
    EXPECT_EQ(ra.fixed, rb.fixed) << "request " << i;
    EXPECT_EQ(ra.earliestScheduleAt, rb.earliestScheduleAt)
        << "request " << i;
  }
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].nonPreemptiveView, b.apps[i].nonPreemptiveView)
        << "app " << i << "\n"
        << a.apps[i].nonPreemptiveView.toString() << "\nvs\n"
        << b.apps[i].nonPreemptiveView.toString();
    EXPECT_EQ(a.apps[i].preemptiveView, b.apps[i].preemptiveView)
        << "app " << i << "\n"
        << a.apps[i].preemptiveView.toString() << "\nvs\n"
        << b.apps[i].preemptiveView.toString();
  }
}

void scheduleWithThreads(Population& p, int threads) {
  Scheduler scheduler(p.machine, Scheduler::Config{p.strict},
                      SchedulerOptions{threads});
  scheduler.schedule(p.apps, p.now);
}

/// The pre-refactor serial scheduling pass (Algorithm 4 as of PR 2),
/// rebuilt from the public building blocks with plain binary view algebra:
/// no pool, no N-ary batching, no occupation-view reuse. The refactored
/// pass must reproduce it bit for bit.
void referenceSchedule(const Machine& machine, std::span<AppSchedule> apps,
                       Time now, bool strict) {
  const Scheduler plain(machine);
  View vnp = plain.machineView();
  View vp = plain.machineView();
  for (AppSchedule& app : apps) {
    vnp -= Scheduler::toView(*app.preAllocations);
  }

  std::vector<View> npOcc;
  std::vector<View> npFitted;
  for (AppSchedule& app : apps) {
    const View ownStartedPa = Scheduler::toView(*app.preAllocations);
    app.nonPreemptiveView = ownStartedPa + vnp;
    app.nonPreemptiveView.clampMin(0);

    const View occPa =
        Scheduler::fit(*app.preAllocations, app.nonPreemptiveView, now);

    npOcc.push_back(Scheduler::toView(*app.nonPreemptible));
    View npAvailable = ownStartedPa + occPa - npOcc.back();
    npAvailable.clampMin(0);
    npFitted.push_back(Scheduler::fit(*app.nonPreemptible, npAvailable, now));

    vnp -= occPa;
  }

  for (const View& occ : npOcc) vp -= occ;
  for (const View& occ : npFitted) vp -= occ;
  vp.clampMin(0);
  Scheduler::eqSchedule(apps, vp, now, strict);
}

TEST(SchedulerParallel, ScheduleBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Population serial = makePopulation(seed);
    scheduleWithThreads(serial, 1);
    for (const int threads : {2, 4, 8}) {
      Population parallel = makePopulation(seed);
      scheduleWithThreads(parallel, threads);
      expectIdentical(serial, parallel,
                      "seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST(SchedulerParallel, ScheduleMatchesPreRefactorSerialReference) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Population reference = makePopulation(seed);
    referenceSchedule(reference.machine, reference.apps, reference.now,
                      reference.strict);
    for (const int threads : {1, 4}) {
      Population refactored = makePopulation(seed);
      scheduleWithThreads(refactored, threads);
      expectIdentical(reference, refactored,
                      "seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST(SchedulerParallel, StrictModeBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 100; seed <= 120; ++seed) {
    Population serial = makePopulation(seed);
    serial.strict = true;
    scheduleWithThreads(serial, 1);
    Population parallel = makePopulation(seed);
    parallel.strict = true;
    scheduleWithThreads(parallel, 8);
    expectIdentical(serial, parallel, "seed=" + std::to_string(seed));
  }
}

TEST(SchedulerParallel, EqScheduleBitIdenticalWithPool) {
  // Algorithm 3 in isolation, against availability with negative
  // stretches (exercising the entry clamp) and clusters nobody occupies.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed * 77);
    View avail;
    const int nclusters = static_cast<int>(rng.uniformInt(1, 8));
    for (int c = 0; c < nclusters; ++c) {
      StepFunction cap = StepFunction::constant(rng.uniformInt(4, 30));
      const int dips = static_cast<int>(rng.uniformInt(0, 3));
      for (int d = 0; d < dips; ++d) {
        cap -= StepFunction::pulse(
            sec(rng.uniformInt(0, 300)),
            rng.uniformInt(0, 3) == 0 ? kTimeInf
                                      : sec(rng.uniformInt(20, 200)),
            rng.uniformInt(1, 20));
      }
      avail.setCap(ClusterId{c}, std::move(cap));
    }

    Population serial = makePopulation(seed);
    Scheduler::eqSchedule(serial.apps, avail, serial.now, serial.strict,
                          ProfileContext{});
    for (const int threads : {2, 8}) {
      WorkerPool pool(threads);
      Population parallel = makePopulation(seed);
      Scheduler::eqSchedule(parallel.apps, avail, parallel.now,
                            parallel.strict, ProfileContext{.pool = &pool});
      expectIdentical(serial, parallel,
                      "seed=" + std::to_string(seed) +
                          " threads=" + std::to_string(threads));
    }
  }
}

TEST(SchedulerParallel, PoolReusedAcrossPassesStaysDeterministic) {
  // One Scheduler (one pool) driving repeated passes at advancing times
  // must track a serial scheduler pass for pass.
  const std::uint64_t seed = 9;
  Population serial = makePopulation(seed);
  Population parallel = makePopulation(seed);
  Scheduler serialScheduler(serial.machine, Scheduler::Config{serial.strict},
                            SchedulerOptions{1});
  Scheduler parallelScheduler(parallel.machine,
                              Scheduler::Config{parallel.strict},
                              SchedulerOptions{4});
  for (int pass = 0; pass < 5; ++pass) {
    const Time now = serial.now + sec(pass * 30);
    serialScheduler.schedule(serial.apps, now);
    parallelScheduler.schedule(parallel.apps, now);
    expectIdentical(serial, parallel, "pass=" + std::to_string(pass));
  }
}

TEST(SchedulerParallel, EmptyAppListIsANoopWithPool) {
  WorkerPool pool(4);
  std::vector<AppSchedule> apps;
  Scheduler::eqSchedule(apps, View{}, 0, false, ProfileContext{.pool = &pool});
  Scheduler scheduler(Machine::single(16), Scheduler::Config{},
                      SchedulerOptions{4});
  scheduler.schedule(apps, 0);  // must not touch the pool with empty batches
}

}  // namespace
}  // namespace coorm

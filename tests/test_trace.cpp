#include "coorm/sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace coorm {
namespace {

TEST(Trace, RecordsEntriesInOrder) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  trace.record(sec(1), "app0", "request");
  trace.record(sec(2), "rms", "start");
  ASSERT_EQ(trace.entries().size(), 2u);
  EXPECT_EQ(trace.entries()[0].actor, "app0");
  EXPECT_EQ(trace.entries()[1].what, "start");
}

TEST(Trace, Contains) {
  Trace trace;
  trace.record(0, "rms", "views -> app0");
  EXPECT_TRUE(trace.contains("views"));
  EXPECT_FALSE(trace.contains("kill"));
}

TEST(Trace, DumpFormatsSeconds) {
  Trace trace;
  trace.record(sec(90), "rms", "start req1");
  std::ostringstream out;
  trace.dump(out);
  EXPECT_NE(out.str().find("90"), std::string::npos);
  EXPECT_NE(out.str().find("start req1"), std::string::npos);
}

TEST(Trace, Clear) {
  Trace trace;
  trace.record(0, "a", "b");
  trace.clear();
  EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace coorm

// Property-based tests: random step functions, algebraic laws checked by
// sampling, consistency between firstFit / minOver / integral, and
// equivalence of the sweep-based N-ary algebra with folds of the binary
// operators.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "coorm/common/rng.hpp"
#include "coorm/profile/profile_sweep.hpp"
#include "coorm/profile/step_function.hpp"

namespace coorm {
namespace {

StepFunction randomFunction(Rng& rng, NodeCount maxValue = 20) {
  StepFunction f;
  const int pulses = static_cast<int>(rng.uniformInt(0, 6));
  for (int i = 0; i < pulses; ++i) {
    const Time start = sec(rng.uniformInt(0, 100));
    const Time duration =
        rng.uniformInt(0, 4) == 0 ? kTimeInf : sec(rng.uniformInt(1, 50));
    f += StepFunction::pulse(start, duration,
                             rng.uniformInt(1, maxValue));
  }
  return f;
}

std::vector<Time> samplePoints(Rng& rng) {
  std::vector<Time> points{0, 1, sec(1)};
  for (int i = 0; i < 32; ++i) points.push_back(sec(rng.uniformInt(0, 200)));
  points.push_back(kTimeInf - 1);
  return points;
}

class StepFunctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionProperty, AdditionIsPointwise) {
  Rng rng(GetParam());
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto sum = a + b;
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(sum.at(t), a.at(t) + b.at(t)) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, SubtractionIsPointwise) {
  Rng rng(GetParam() ^ 0x9e37);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto diff = a - b;
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(diff.at(t), a.at(t) - b.at(t)) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, MaxIsPointwiseAndCommutative) {
  Rng rng(GetParam() ^ 0xabcd);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  auto ab = a;
  ab.pointwiseMax(b);
  auto ba = b;
  ba.pointwiseMax(a);
  EXPECT_EQ(ab, ba);
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(ab.at(t), std::max(a.at(t), b.at(t))) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, AdditionAssociates) {
  Rng rng(GetParam() ^ 0x1111);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto c = randomFunction(rng);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(StepFunctionProperty, AddThenSubtractRoundTrips) {
  Rng rng(GetParam() ^ 0x2222);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  EXPECT_EQ((a + b) - b, a);
}

TEST_P(StepFunctionProperty, CanonicalFormInvariants) {
  Rng rng(GetParam() ^ 0x3333);
  const auto f = randomFunction(rng);
  const auto segments = f.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_LT(segments[i - 1].start, segments[i].start);
    EXPECT_NE(segments[i - 1].value, segments[i].value);
  }
}

TEST_P(StepFunctionProperty, FirstFitResultActuallyFits) {
  Rng rng(GetParam() ^ 0x4444);
  const auto f = randomFunction(rng);
  for (int trial = 0; trial < 20; ++trial) {
    const Time earliest = sec(rng.uniformInt(0, 150));
    const Time duration = sec(rng.uniformInt(1, 60));
    const NodeCount need = rng.uniformInt(1, 25);
    const Time at = f.firstFit(earliest, duration, need);
    if (isInf(at)) {
      // No window: in particular the tail must not satisfy the request.
      EXPECT_LT(f.tailValue(), need);
      continue;
    }
    EXPECT_GE(at, earliest);
    EXPECT_GE(f.minOver(at, satAdd(at, duration)), need)
        << "window at " << at;
    // Minimality: starting one sample earlier must not fit (check a few
    // candidate earlier times).
    if (at > earliest) {
      EXPECT_LT(f.minOver(at - 1, satAdd(at - 1, duration)), need);
    }
  }
}

TEST_P(StepFunctionProperty, MinOverIsLowerBoundOfSamples) {
  Rng rng(GetParam() ^ 0x5555);
  const auto f = randomFunction(rng);
  for (int trial = 0; trial < 10; ++trial) {
    const Time t0 = sec(rng.uniformInt(0, 100));
    const Time t1 = t0 + sec(rng.uniformInt(1, 100));
    const NodeCount lower = f.minOver(t0, t1);
    for (Time t = t0; t < t1; t += std::max<Time>((t1 - t0) / 7, 1)) {
      EXPECT_LE(lower, f.at(t));
    }
  }
}

TEST_P(StepFunctionProperty, IntegralMatchesRiemannSum) {
  Rng rng(GetParam() ^ 0x6666);
  const auto f = randomFunction(rng);
  const Time t0 = sec(rng.uniformInt(0, 50));
  const Time t1 = t0 + sec(rng.uniformInt(1, 100));
  double sum = 0.0;
  for (Time t = t0; t < t1; t += msec(250)) {
    sum += static_cast<double>(f.at(t)) * 0.25;
  }
  EXPECT_NEAR(f.integralNodeSeconds(t0, t1), sum, 1e-6);
}

TEST_P(StepFunctionProperty, NAryCombineMatchesBinaryFold) {
  Rng rng(GetParam() ^ 0x7777);
  const int n = static_cast<int>(rng.uniformInt(0, 6));
  std::vector<StepFunction> fns;
  fns.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) fns.push_back(randomFunction(rng));
  std::vector<const StepFunction*> ptrs;
  for (const auto& fn : fns) ptrs.push_back(&fn);

  StepFunction foldSum;
  for (const auto& fn : fns) foldSum += fn;
  EXPECT_EQ(StepFunction::combine(ptrs, StepFunction::CombineOp::kSum),
            foldSum);

  if (!fns.empty()) {
    StepFunction foldMax = fns.front();
    StepFunction foldMin = fns.front();
    for (std::size_t i = 1; i < fns.size(); ++i) {
      foldMax.pointwiseMax(fns[i]);
      foldMin.pointwiseMin(fns[i]);
    }
    EXPECT_EQ(StepFunction::combine(ptrs, StepFunction::CombineOp::kMax),
              foldMax);
    EXPECT_EQ(StepFunction::combine(ptrs, StepFunction::CombineOp::kMin),
              foldMin);
  } else {
    EXPECT_TRUE(StepFunction::combine(ptrs, StepFunction::CombineOp::kMax)
                    .isZero());
  }
}

TEST_P(StepFunctionProperty, AddPulseMatchesPlusPulse) {
  Rng rng(GetParam() ^ 0x8888);
  StepFunction f = randomFunction(rng);
  for (int trial = 0; trial < 20; ++trial) {
    const Time start = sec(rng.uniformInt(0, 120));
    const Time duration =
        rng.uniformInt(0, 4) == 0 ? kTimeInf : sec(rng.uniformInt(0, 60));
    const NodeCount value = rng.uniformInt(-5, 10);
    StepFunction viaPulse = f;
    viaPulse += StepFunction::pulse(start, duration, value);
    f.addPulse(start, duration, value);
    EXPECT_EQ(f, viaPulse)
        << "pulse start=" << start << " duration=" << duration
        << " value=" << value;
  }
}

TEST_P(StepFunctionProperty, ProfileSweepVisitsExactlyTheMergedBreakpoints) {
  Rng rng(GetParam() ^ 0x9999);
  const int n = static_cast<int>(rng.uniformInt(1, 5));
  std::vector<StepFunction> fns;
  for (int i = 0; i < n; ++i) fns.push_back(randomFunction(rng));
  std::vector<const StepFunction*> ptrs;
  for (const auto& fn : fns) ptrs.push_back(&fn);

  std::vector<Time> expected;
  for (const auto& fn : fns) {
    for (const auto& seg : fn.segments()) expected.push_back(seg.start);
  }
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());

  ProfileSweep sweep(ptrs);
  std::vector<Time> visited{sweep.time()};
  for (std::size_t i = 0; i < fns.size(); ++i) {
    EXPECT_EQ(sweep.value(i), fns[i].at(sweep.time()));
  }
  while (sweep.advance()) {
    EXPECT_GT(sweep.time(), visited.back());
    EXPECT_FALSE(sweep.changed().empty());
    visited.push_back(sweep.time());
    for (std::size_t i = 0; i < fns.size(); ++i) {
      EXPECT_EQ(sweep.value(i), fns[i].at(sweep.time()))
          << "function " << i << " at t=" << sweep.time();
    }
  }
  EXPECT_EQ(visited, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace coorm

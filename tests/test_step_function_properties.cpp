// Property-based tests: random step functions, algebraic laws checked by
// sampling, and consistency between firstFit / minOver / integral.
#include <gtest/gtest.h>

#include "coorm/common/rng.hpp"
#include "coorm/profile/step_function.hpp"

namespace coorm {
namespace {

StepFunction randomFunction(Rng& rng, NodeCount maxValue = 20) {
  StepFunction f;
  const int pulses = static_cast<int>(rng.uniformInt(0, 6));
  for (int i = 0; i < pulses; ++i) {
    const Time start = sec(rng.uniformInt(0, 100));
    const Time duration =
        rng.uniformInt(0, 4) == 0 ? kTimeInf : sec(rng.uniformInt(1, 50));
    f += StepFunction::pulse(start, duration,
                             rng.uniformInt(1, maxValue));
  }
  return f;
}

std::vector<Time> samplePoints(Rng& rng) {
  std::vector<Time> points{0, 1, sec(1)};
  for (int i = 0; i < 32; ++i) points.push_back(sec(rng.uniformInt(0, 200)));
  points.push_back(kTimeInf - 1);
  return points;
}

class StepFunctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StepFunctionProperty, AdditionIsPointwise) {
  Rng rng(GetParam());
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto sum = a + b;
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(sum.at(t), a.at(t) + b.at(t)) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, SubtractionIsPointwise) {
  Rng rng(GetParam() ^ 0x9e37);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto diff = a - b;
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(diff.at(t), a.at(t) - b.at(t)) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, MaxIsPointwiseAndCommutative) {
  Rng rng(GetParam() ^ 0xabcd);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  auto ab = a;
  ab.pointwiseMax(b);
  auto ba = b;
  ba.pointwiseMax(a);
  EXPECT_EQ(ab, ba);
  for (const Time t : samplePoints(rng)) {
    EXPECT_EQ(ab.at(t), std::max(a.at(t), b.at(t))) << "t=" << t;
  }
}

TEST_P(StepFunctionProperty, AdditionAssociates) {
  Rng rng(GetParam() ^ 0x1111);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  const auto c = randomFunction(rng);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(StepFunctionProperty, AddThenSubtractRoundTrips) {
  Rng rng(GetParam() ^ 0x2222);
  const auto a = randomFunction(rng);
  const auto b = randomFunction(rng);
  EXPECT_EQ((a + b) - b, a);
}

TEST_P(StepFunctionProperty, CanonicalFormInvariants) {
  Rng rng(GetParam() ^ 0x3333);
  const auto f = randomFunction(rng);
  const auto segments = f.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().start, 0);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_LT(segments[i - 1].start, segments[i].start);
    EXPECT_NE(segments[i - 1].value, segments[i].value);
  }
}

TEST_P(StepFunctionProperty, FirstFitResultActuallyFits) {
  Rng rng(GetParam() ^ 0x4444);
  const auto f = randomFunction(rng);
  for (int trial = 0; trial < 20; ++trial) {
    const Time earliest = sec(rng.uniformInt(0, 150));
    const Time duration = sec(rng.uniformInt(1, 60));
    const NodeCount need = rng.uniformInt(1, 25);
    const Time at = f.firstFit(earliest, duration, need);
    if (isInf(at)) {
      // No window: in particular the tail must not satisfy the request.
      EXPECT_LT(f.tailValue(), need);
      continue;
    }
    EXPECT_GE(at, earliest);
    EXPECT_GE(f.minOver(at, satAdd(at, duration)), need)
        << "window at " << at;
    // Minimality: starting one sample earlier must not fit (check a few
    // candidate earlier times).
    if (at > earliest) {
      EXPECT_LT(f.minOver(at - 1, satAdd(at - 1, duration)), need);
    }
  }
}

TEST_P(StepFunctionProperty, MinOverIsLowerBoundOfSamples) {
  Rng rng(GetParam() ^ 0x5555);
  const auto f = randomFunction(rng);
  for (int trial = 0; trial < 10; ++trial) {
    const Time t0 = sec(rng.uniformInt(0, 100));
    const Time t1 = t0 + sec(rng.uniformInt(1, 100));
    const NodeCount lower = f.minOver(t0, t1);
    for (Time t = t0; t < t1; t += std::max<Time>((t1 - t0) / 7, 1)) {
      EXPECT_LE(lower, f.at(t));
    }
  }
}

TEST_P(StepFunctionProperty, IntegralMatchesRiemannSum) {
  Rng rng(GetParam() ^ 0x6666);
  const auto f = randomFunction(rng);
  const Time t0 = sec(rng.uniformInt(0, 50));
  const Time t1 = t0 + sec(rng.uniformInt(1, 100));
  double sum = 0.0;
  for (Time t = t0; t < t1; t += msec(250)) {
    sum += static_cast<double>(f.at(t)) * 0.25;
  }
  EXPECT_NEAR(f.integralNodeSeconds(t0, t1), sum, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepFunctionProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace coorm

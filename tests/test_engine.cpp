#include "coorm/sim/engine.hpp"

#include <gtest/gtest.h>

namespace coorm {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_TRUE(engine.empty());
}

TEST(Engine, NextEventAtPeeksWithoutPopping) {
  Engine engine;
  EXPECT_EQ(engine.nextEventAt(), kTimeInf);  // empty queue
  engine.schedule(30, [] {});
  const EventHandle cancelled = engine.schedule(10, [] {});
  EXPECT_EQ(engine.nextEventAt(), 10);
  Executor::cancel(cancelled);
  // Cancelled events count until popped: a lower bound, not the dispatch
  // time.
  EXPECT_EQ(engine.nextEventAt(), 10);
  EXPECT_TRUE(engine.step());  // pops the cancelled event, runs the 30s one
  EXPECT_EQ(engine.now(), 30);
  EXPECT_EQ(engine.nextEventAt(), kTimeInf);
}

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(sec(3), [&] { order.push_back(3); });
  engine.schedule(sec(1), [&] { order.push_back(1); });
  engine.schedule(sec(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), sec(3));
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(sec(1), [&] { order.push_back(1); });
  engine.schedule(sec(1), [&] { order.push_back(2); });
  engine.schedule(sec(1), [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule(sec(1), [&] {
    engine.after(sec(1), [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), sec(2));
}

TEST(Engine, ZeroDelayEventRunsAtSameTime) {
  Engine engine;
  Time observed = kNever;
  engine.schedule(sec(5), [&] {
    engine.after(0, [&] { observed = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(observed, sec(5));
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  int fired = 0;
  const EventHandle handle = engine.schedule(sec(1), [&] { ++fired; });
  Executor::cancel(handle);
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, CancelFromEarlierEvent) {
  Engine engine;
  int fired = 0;
  const EventHandle handle = engine.schedule(sec(2), [&] { ++fired; });
  engine.schedule(sec(1), [&] { Executor::cancel(handle); });
  engine.run();
  EXPECT_EQ(fired, 0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine engine;
  int fired = 0;
  engine.schedule(sec(1), [&] { ++fired; });
  engine.schedule(sec(5), [&] { ++fired; });
  engine.runUntil(sec(3));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), sec(3));
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule(sec(3), [&] { ++fired; });
  engine.runUntil(sec(3));
  EXPECT_EQ(fired, 1);
}

TEST(Engine, StopInterruptsRun) {
  Engine engine;
  int fired = 0;
  engine.schedule(sec(1), [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule(sec(2), [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.empty());
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule(0, [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, RunReturnsDispatchCount) {
  Engine engine;
  for (int i = 0; i < 5; ++i) engine.schedule(sec(i), [] {});
  EXPECT_EQ(engine.run(), 5u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto simulate = [] {
    Engine engine;
    std::vector<Time> log;
    for (int i = 0; i < 10; ++i) {
      engine.schedule(sec(10 - i), [&log, &engine] {
        log.push_back(engine.now());
        engine.after(msec(500), [&log, &engine] { log.push_back(engine.now()); });
      });
    }
    engine.run();
    return log;
  };
  EXPECT_EQ(simulate(), simulate());
}

}  // namespace
}  // namespace coorm

// Differential suite for the pipelined server (ISSUE 4).
//
// The two-stage pipeline (snapshot launch on a background lane plus a
// deterministic commit) promises:
//  1. application-observable output — every endpoint callback with its
//     payload, final node-pool state, pass count — is *bit-identical* to
//     the serial back-to-back server (Config::pipeline = false), for any
//     `threads` setting;
//  2. pipelined runs are fully deterministic: identical protocol traces
//     across repeats and across thread counts;
//  3. passes really do overlap protocol handling (request bursts arriving
//     while a pass is in flight), exercising the commit's reconciliation.
//
// Within a single timestamp the *server-internal* trace may order a
// mid-pass "request" record before the commit's "start"/"views" records
// (the serial server, running the pass atomically, logs them the other way
// round); the suite therefore compares traces exactly across pipelined
// variants and per-timestamp-canonicalized against the serial server.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coorm/common/rng.hpp"
#include "coorm/rms/server.hpp"
#include "coorm/sim/engine.hpp"

namespace coorm {
namespace {

const ClusterId kC0{0};
const ClusterId kC1{1};

/// A scripted application performing deterministic pseudo-random protocol
/// action bursts, recording everything the server tells it.
class ScriptApp : public AppEndpoint {
 public:
  ScriptApp(Engine& engine, std::uint64_t seed, Time disconnectAt)
      : engine_(engine), rng_(seed), disconnectAt_(disconnectAt) {}

  void attach(Server& server) {
    session_ = server.connect(*this);
    scheduleAction();
    scheduleEnforcement();
    if (disconnectAt_ > 0) {
      engine_.after(disconnectAt_, [this] {
        if (!done_ && !killed_) {
          log("disconnect");
          session_->disconnect();
          done_ = true;
        }
      });
    }
  }

  void onViews(const View& np, const View& p) override {
    npView_ = np;
    pView_ = p;
    log("views np=" + np.toString() + " p=" + p.toString());
    if (!killed_ && !done_) enforcePreemptibleLimit();
  }

  void onStarted(RequestId id, const std::vector<NodeId>& ids) override {
    held_[id] = ids;
    std::ostringstream os;
    os << "started " << toString(id) << " [";
    for (const NodeId& node : ids) os << toString(node) << ' ';
    os << ']';
    log(os.str());
  }

  void onExpired(RequestId id) override {
    log("expired " + toString(id));
    if (session_ != nullptr && !killed_ && !done_) session_->done(id);
  }

  void onEnded(RequestId id) override {
    log("ended " + toString(id));
    held_.erase(id);
  }

  void onKilled() override {
    log("killed");
    killed_ = true;
  }

  [[nodiscard]] const std::vector<std::string>& events() const {
    return events_;
  }

 private:
  void log(const std::string& what) {
    events_.push_back("t=" + std::to_string(engine_.now()) + " " + what);
  }

  void scheduleAction() {
    // Half-second action grid against the server's 1 s re-scheduling
    // interval: a message at X.5 s arms the pass for (X+1).0 s, and the
    // *next* actions scheduled after that arming can land exactly at
    // (X+1).0 s — i.e. dispatch while that pass is in flight. That is the
    // interleaving this suite exists to exercise.
    engine_.after(msec(500) * rng_.uniformInt(1, 8), [this] {
      if (done_ || killed_) return;
      const int burst = static_cast<int>(rng_.uniformInt(1, 3));
      for (int i = 0; i < burst; ++i) act();
      scheduleAction();
    });
  }

  void scheduleEnforcement() {
    engine_.after(sec(2), [this] {
      if (done_ || killed_) return;
      enforcePreemptibleLimit();
      scheduleEnforcement();
    });
  }

  void enforcePreemptibleLimit() {
    for (const ClusterId cid : {kC0, kC1}) {
      const NodeCount allowed = pView_.at(cid, engine_.now());
      NodeCount heldP = 0;
      for (const auto& [id, ids] : held_) {
        if (typeOf_[id] != RequestType::kPreemptible) continue;
        heldP += std::count_if(
            ids.begin(), ids.end(),
            [&](const NodeId& node) { return node.cluster == cid; });
      }
      while (heldP > allowed) {
        RequestId victim{};
        for (const auto& [id, ids] : held_) {
          if (typeOf_[id] == RequestType::kPreemptible && !ids.empty() &&
              ids.front().cluster == cid) {
            victim = id;
            break;
          }
        }
        if (!victim.valid()) break;
        const auto ids = held_[victim];
        heldP -= std::ssize(ids);
        log("release " + toString(victim));
        session_->done(victim, ids);
        held_.erase(victim);
      }
    }
  }

  void act() {
    const ClusterId cid = rng_.uniformInt(0, 3) == 0 ? kC1 : kC0;
    switch (rng_.uniformInt(0, 4)) {
      case 0: {  // non-preemptible request (implicitly wrapped)
        RequestSpec spec;
        spec.cluster = cid;
        spec.nodes = rng_.uniformInt(1, 6);
        spec.duration = sec(rng_.uniformInt(10, 90));
        spec.type = RequestType::kNonPreemptible;
        remember(session_->request(spec), spec.type);
        break;
      }
      case 1: {  // preemptible request, sometimes open-ended
        RequestSpec spec;
        spec.cluster = cid;
        spec.nodes = rng_.uniformInt(1, 6);
        spec.duration =
            rng_.uniformInt(0, 1) ? kTimeInf : sec(rng_.uniformInt(20, 150));
        spec.type = RequestType::kPreemptible;
        remember(session_->request(spec), spec.type);
        break;
      }
      case 2: {  // NEXT-chained follow-up to the most recent request
        if (lastRequest_.valid()) {
          RequestSpec spec;
          spec.cluster = cid;
          spec.nodes = rng_.uniformInt(1, 4);
          spec.duration = sec(rng_.uniformInt(10, 60));
          spec.type = typeOf_[lastRequest_];
          spec.relatedHow = Relation::kNext;
          spec.relatedTo = lastRequest_;
          remember(session_->request(spec), spec.type);
        }
        break;
      }
      case 3: {  // done() something, started or not
        if (!pending_.empty()) {
          const std::size_t index = static_cast<std::size_t>(
              rng_.uniformInt(0, std::ssize(pending_) - 1));
          const RequestId id = pending_[index];
          pending_.erase(pending_.begin() + static_cast<long>(index));
          const auto it = held_.find(id);
          log("done " + toString(id));
          session_->done(id, it != held_.end() ? it->second
                                               : std::vector<NodeId>{});
        }
        break;
      }
      case 4:  // idle
        break;
    }
  }

  void remember(RequestId id, RequestType type) {
    if (!id.valid()) return;
    typeOf_[id] = type;
    pending_.push_back(id);
    lastRequest_ = id;
  }

  Engine& engine_;
  Rng rng_;
  Time disconnectAt_;
  Session* session_ = nullptr;
  View npView_, pView_;
  std::map<RequestId, std::vector<NodeId>> held_;
  std::map<RequestId, RequestType> typeOf_;
  std::vector<RequestId> pending_;
  RequestId lastRequest_{};
  std::vector<std::string> events_;
  bool killed_ = false;
  bool done_ = false;
};

struct Outcome {
  std::vector<std::vector<std::string>> appLogs;
  std::vector<std::string> trace;  ///< "t=<at> <actor>: <what>"
  NodeCount freeC0 = 0;
  NodeCount freeC1 = 0;
  std::uint64_t passes = 0;
  std::uint64_t overlapped = 0;
};

Outcome runScenario(std::uint64_t seed, bool pipeline, int threads,
                    int napps = 5, Time horizon = minutes(8)) {
  Engine engine;
  Machine machine;
  machine.clusters.push_back({kC0, 16});
  machine.clusters.push_back({kC1, 8});
  Server::Config config;
  config.reschedInterval = sec(1);
  config.violationGrace = sec(5);
  config.pipeline = pipeline;
  config.threads = threads;
  Server server(engine, machine, config);
  Trace trace;
  server.setTrace(&trace);

  Rng rng(seed);
  std::vector<std::unique_ptr<ScriptApp>> apps;
  for (int i = 0; i < napps; ++i) {
    // Some applications leave mid-run; one joins late (connect() is one of
    // the two messages that overlap an in-flight pass).
    const Time disconnectAt =
        rng.uniformInt(0, 3) == 0 ? sec(rng.uniformInt(60, 400)) : 0;
    apps.push_back(std::make_unique<ScriptApp>(
        engine, rng.fork().engine()(), disconnectAt));
    if (i + 1 == napps) {
      ScriptApp* late = apps.back().get();
      engine.after(sec(30), [late, &server] { late->attach(server); });
    } else {
      apps.back()->attach(server);
    }
  }

  engine.runUntil(horizon);

  Outcome outcome;
  for (const auto& app : apps) outcome.appLogs.push_back(app->events());
  for (const Trace::Entry& entry : trace.entries()) {
    outcome.trace.push_back("t=" + std::to_string(entry.at) + " " +
                            entry.actor + ": " + entry.what);
  }
  outcome.freeC0 = server.pool().freeCount(kC0);
  outcome.freeC1 = server.pool().freeCount(kC1);
  outcome.passes = server.passCount();
  outcome.overlapped = server.overlappedPassCount();
  return outcome;
}

/// Stable per-timestamp canonicalization: within one timestamp the
/// pipelined server may log a mid-pass "request" before the commit's
/// records; sorting each same-timestamp block compares content and
/// cross-timestamp order while ignoring that one legal reordering.
std::vector<std::string> canonicalized(std::vector<std::string> trace) {
  auto blockStart = trace.begin();
  while (blockStart != trace.end()) {
    const std::string stamp =
        blockStart->substr(0, blockStart->find(' ') + 1);
    auto blockEnd = blockStart;
    while (blockEnd != trace.end() &&
           blockEnd->compare(0, stamp.size(), stamp) == 0) {
      ++blockEnd;
    }
    std::sort(blockStart, blockEnd);
    blockStart = blockEnd;
  }
  return trace;
}

void expectSameOutput(const Outcome& a, const Outcome& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.appLogs.size(), b.appLogs.size());
  for (std::size_t i = 0; i < a.appLogs.size(); ++i) {
    EXPECT_EQ(a.appLogs[i], b.appLogs[i]) << "app " << i;
  }
  EXPECT_EQ(a.freeC0, b.freeC0);
  EXPECT_EQ(a.freeC1, b.freeC1);
  EXPECT_EQ(a.passes, b.passes);
}

TEST(ServerPipeline, OutputBitIdenticalToSerialServerAcrossThreadCounts) {
  std::uint64_t totalOverlapped = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Outcome serial = runScenario(seed, /*pipeline=*/false, 1);
    EXPECT_EQ(serial.overlapped, 0u);  // serial passes never overlap
    for (const int threads : {1, 2, 4, 8}) {
      const Outcome pipelined = runScenario(seed, /*pipeline=*/true, threads);
      expectSameOutput(serial, pipelined,
                       "seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
      EXPECT_EQ(canonicalized(serial.trace), canonicalized(pipelined.trace))
          << "seed=" << seed << " threads=" << threads;
      totalOverlapped += pipelined.overlapped;
    }
  }
  // The suite must actually exercise the overlap path: across the seeds,
  // some passes saw request()/connect() arrive while in flight.
  EXPECT_GT(totalOverlapped, 0u);
}

TEST(ServerPipeline, PipelinedTracesAreDeterministic) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    const Outcome first = runScenario(seed, /*pipeline=*/true, 2);
    const Outcome repeat = runScenario(seed, /*pipeline=*/true, 2);
    EXPECT_EQ(first.trace, repeat.trace) << "seed=" << seed;  // exact
    expectSameOutput(first, repeat, "repeat seed=" + std::to_string(seed));
    for (const int threads : {1, 4}) {
      const Outcome other = runScenario(seed, /*pipeline=*/true, threads);
      EXPECT_EQ(first.trace, other.trace)
          << "seed=" << seed << " threads=" << threads;
      expectSameOutput(first, other,
                       "seed=" + std::to_string(seed) +
                           " threads=" + std::to_string(threads));
      EXPECT_EQ(first.overlapped, other.overlapped);
    }
  }
}

TEST(ServerPipeline, RunSchedulingPassNowCommitsSynchronously) {
  Engine engine;
  Server server(engine, Machine::single(8));  // pipeline defaults on

  class Silent : public AppEndpoint {
  } endpoint;
  Session* session = server.connect(endpoint);
  RequestSpec spec;
  spec.cluster = kC0;
  spec.nodes = 4;
  spec.duration = sec(60);
  spec.type = RequestType::kNonPreemptible;
  const RequestId id = session->request(spec);

  server.runSchedulingPassNow();
  const Request* r = server.findRequest(id);
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->started());  // committed: the request actually started
}

TEST(ServerPipeline, SessionAccessorsObserveCommittedViews) {
  Engine engine;
  Server::Config config;
  config.reschedInterval = sec(1);
  Server server(engine, Machine::single(12), config);

  class Silent : public AppEndpoint {
  } endpoint;
  class Silent2 : public AppEndpoint {
  } endpoint2;
  Session* session = server.connect(endpoint);
  Session* observer = server.connect(endpoint2);
  RequestSpec spec;
  spec.cluster = kC0;
  spec.nodes = 4;
  spec.duration = sec(60);
  spec.type = RequestType::kNonPreemptible;
  session->request(spec);
  engine.runUntil(sec(2));

  // The views reflect the committed pass: the other application sees
  // 12 - 4 = 8 non-preemptible nodes while the request runs (its own view
  // adds its own pre-allocated resources back, so it must be read from a
  // second session).
  EXPECT_FALSE(session->killed());
  EXPECT_EQ(observer->nonPreemptiveView().at(kC0, engine.now()), 8);
}

}  // namespace
}  // namespace coorm

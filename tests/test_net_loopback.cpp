// Daemon/client mechanics over loopback TCP: handshake, synchronous
// request acks, view/start/end delivery, graceful and abrupt departures
// (dead-peer cleanup mapped to disconnect), partial-frame reassembly on
// the daemon's read path, and protocol-error handling — the transport
// behaviours the differential suite builds on.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>

#include "net_harness.hpp"

namespace coorm::nettest {
namespace {

Server::Config quickConfig() {
  Server::Config config;
  config.reschedInterval = msec(20);
  return config;
}

/// Pumps the client loop until `pred` holds (or the wall deadline).
template <typename Pred>
bool pumpUntil(net::PollExecutor& executor, Pred pred, Time timeout = sec(10)) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    executor.runOne(msec(5));
  }
  return true;
}

TEST(NetLoopback, ConnectRequestDoneDisconnect) {
  DaemonFixture daemon(quickConfig(), 32);
  net::PollExecutor loop;
  net::RmsClient client(
      loop, net::RmsClient::Config{{"127.0.0.1", daemon.port()}, "basic"});
  ScriptApp app;
  client.connect(app);
  app.bind(client);

  EXPECT_TRUE(client.connected());
  EXPECT_TRUE(client.app().valid());

  ASSERT_TRUE(pumpUntil(loop, [&] { return app.viewsCount >= 1; }));

  RequestSpec spec;
  spec.nodes = 4;
  spec.duration = sec(60);
  const int ordinal = app.submit(spec);
  EXPECT_TRUE(app.submitted[static_cast<std::size_t>(ordinal)].valid());

  ASSERT_TRUE(pumpUntil(loop, [&] { return app.startedCount >= 1; }));
  EXPECT_EQ(app.granted[0].size(), 4u);

  app.finish(ordinal);
  ASSERT_TRUE(pumpUntil(loop, [&] {
    return !app.trace.empty() && app.trace.back() == "ended #0";
  }));

  client.disconnect();
  EXPECT_FALSE(client.connected());
}

TEST(NetLoopback, InvalidRequestSpecsAreAckedInvalidNotFatal) {
  DaemonFixture daemon(quickConfig(), 32);
  net::PollExecutor loop;
  net::RmsClient client(
      loop, net::RmsClient::Config{{"127.0.0.1", daemon.port()}, "bad-specs"});
  ScriptApp app;
  client.connect(app);
  app.bind(client);

  RequestSpec zeroNodes;
  zeroNodes.nodes = 0;
  zeroNodes.duration = sec(10);
  EXPECT_FALSE(client.request(zeroNodes).valid());

  RequestSpec badCluster;
  badCluster.cluster = ClusterId{99};
  badCluster.nodes = 1;
  badCluster.duration = sec(10);
  EXPECT_FALSE(client.request(badCluster).valid());

  // The session survived the rejections: a valid request still works.
  RequestSpec good;
  good.nodes = 1;
  good.duration = sec(10);
  EXPECT_TRUE(client.request(good).valid());
  EXPECT_FALSE(client.dead());
}

TEST(NetLoopback, DeadPeerCleanupFreesResourcesForOthers) {
  DaemonFixture daemon(quickConfig(), 8);
  net::PollExecutor loop;

  auto hog = std::make_unique<net::RmsClient>(
      loop, net::RmsClient::Config{{"127.0.0.1", daemon.port()}, "hog"});
  ScriptApp hogApp;
  hog->connect(hogApp);
  hogApp.bind(*hog);
  RequestSpec all;
  all.nodes = 8;
  all.duration = sec(600);
  hogApp.submit(all);
  ASSERT_TRUE(pumpUntil(loop, [&] { return hogApp.startedCount >= 1; }));

  net::RmsClient other(
      loop, net::RmsClient::Config{{"127.0.0.1", daemon.port()}, "other"});
  ScriptApp otherApp;
  other.connect(otherApp);
  otherApp.bind(other);
  ASSERT_TRUE(pumpUntil(loop, [&] { return otherApp.viewsCount >= 1; }));
  // All 8 nodes are held for the next 600 s: the newcomer's np view has a
  // zero-availability segment over the hog's window ([8 0 8]).
  const std::string& firstViews = otherApp.trace.back();
  const std::string npPart = firstViews.substr(0, firstViews.find(" p="));
  EXPECT_NE(npPart.find(" 0 "), std::string::npos) << firstViews;

  // Abrupt death: destroy the client without a GOODBYE. The daemon maps
  // the EOF to disconnect(), the nodes come back, and the survivor gets a
  // fresh view push showing full availability again.
  hog.reset();
  ASSERT_TRUE(pumpUntil(loop, [&] {
    return otherApp.viewsCount >= 2 &&
           otherApp.trace.back().substr(0, 13) == "views np=[8 ]";
  }));
}

// --- raw-socket tests: framing on the daemon's read path -------------------

struct RawConnection {
  net::Fd fd;

  explicit RawConnection(std::uint16_t port) {
    std::string error;
    fd = net::connectTo({"127.0.0.1", port}, error);
    EXPECT_TRUE(fd.valid()) << error;
  }

  void sendAll(std::span<const std::uint8_t> bytes, std::size_t chunk) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const std::size_t n = std::min(chunk, bytes.size() - sent);
      pollfd p{fd.get(), POLLOUT, 0};
      ASSERT_GT(::poll(&p, 1, 1000), 0);
      const ssize_t written = ::send(fd.get(), bytes.data() + sent, n, 0);
      ASSERT_GT(written, 0);
      sent += static_cast<std::size_t>(written);
      // A tiny pause defeats kernel coalescing often enough to exercise
      // the daemon's partial-read reassembly.
      ::usleep(500);
    }
  }

  /// Reads until one frame (or EOF/timeout). Returns false on EOF.
  bool readFrame(net::FrameView& frame, std::vector<std::uint8_t>& storage,
                 net::FrameBuffer& buffer) {
    while (true) {
      if (buffer.next(frame) == net::FrameBuffer::Next::kFrame) return true;
      pollfd p{fd.get(), POLLIN, 0};
      if (::poll(&p, 1, 5000) <= 0) return false;
      std::uint8_t chunk[4096];
      const ssize_t n = ::recv(fd.get(), chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      storage.assign(chunk, chunk + n);
      buffer.append({storage.data(), static_cast<std::size_t>(n)});
    }
  }
};

TEST(NetLoopback, DaemonReassemblesDribbledFrames) {
  DaemonFixture daemon(quickConfig(), 16);
  RawConnection raw(daemon.port());

  std::vector<std::uint8_t> hello;
  encode(hello, net::HelloMsg{"dribbler"});
  raw.sendAll(hello, 1);  // one byte at a time

  net::FrameBuffer buffer;
  std::vector<std::uint8_t> storage;
  net::FrameView frame;
  ASSERT_TRUE(raw.readFrame(frame, storage, buffer));
  ASSERT_EQ(frame.type, net::MsgType::kWelcome);
  net::WelcomeMsg welcome;
  ASSERT_TRUE(decode(frame.payload, welcome));
  EXPECT_TRUE(welcome.app.valid());

  // A request split into two arbitrary chunks still acks.
  net::RequestMsg request;
  request.cookie = 77;
  request.spec.nodes = 2;
  request.spec.duration = sec(30);
  std::vector<std::uint8_t> bytes;
  encode(bytes, request);
  raw.sendAll(bytes, bytes.size() / 2 + 1);

  bool acked = false;
  while (raw.readFrame(frame, storage, buffer)) {
    if (frame.type == net::MsgType::kRequestAck) {
      net::RequestAckMsg ack;
      ASSERT_TRUE(decode(frame.payload, ack));
      EXPECT_EQ(ack.cookie, 77u);
      EXPECT_TRUE(ack.id.valid());
      acked = true;
      break;
    }
  }
  EXPECT_TRUE(acked);
}

TEST(NetLoopback, ProtocolErrorsDropTheConnection) {
  DaemonFixture daemon(quickConfig(), 16);
  RawConnection raw(daemon.port());

  const std::uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef,
                                  0x00, 0x00, 0x00, 0x00};
  raw.sendAll({garbage, sizeof(garbage)}, sizeof(garbage));

  // The daemon closes on the bad magic: expect EOF, not a reply.
  net::FrameBuffer buffer;
  std::vector<std::uint8_t> storage;
  net::FrameView frame;
  EXPECT_FALSE(raw.readFrame(frame, storage, buffer));
}

TEST(NetLoopback, ManyClientsInterleaveCleanly) {
  DaemonFixture daemon(quickConfig(), 64);
  net::PollExecutor loop;

  constexpr int kClients = 6;
  std::vector<std::unique_ptr<net::RmsClient>> clients;
  std::vector<std::unique_ptr<ScriptApp>> apps;
  for (int i = 0; i < kClients; ++i) {
    apps.push_back(std::make_unique<ScriptApp>());
    clients.push_back(std::make_unique<net::RmsClient>(
        loop, net::RmsClient::Config{{"127.0.0.1", daemon.port()},
                                     "client" + std::to_string(i)}));
    ScriptApp& app = *apps.back();
    app.onFirstViews = [&app, i] {
      RequestSpec spec;
      spec.nodes = 1 + i;
      spec.duration = msec(200);
      app.submit(spec);
    };
    app.onEndedHook = [&app](int) { app.leave(); };
    clients.back()->connect(app);
    app.bind(*clients.back());
  }

  ASSERT_TRUE(pumpUntil(loop, [&] {
    for (const auto& app : apps) {
      if (!app->left) return false;
    }
    return true;
  }, sec(20)));

  for (const auto& app : apps) {
    EXPECT_EQ(app->startedCount, 1);
    EXPECT_FALSE(app->killed);
  }
}

}  // namespace
}  // namespace coorm::nettest

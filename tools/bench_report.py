#!/usr/bin/env python3
"""Convert Google Benchmark output into the committed perf trajectory.

Reads `--benchmark_format=json` output (either from a file or by running
the benchmark binary directly) and merges one labelled run into
BENCH_scheduler.json, so every PR can compare its numbers against the
recorded history:

    # from a finished benchmark run
    build/bench/bench_scheduler_throughput \
        --benchmark_format=json --benchmark_out=/tmp/bench.json
    tools/bench_report.py --bench-json /tmp/bench.json \
        --label pr2-sweep --output BENCH_scheduler.json

    # or let the script drive the binary
    tools/bench_report.py --binary build/bench/bench_scheduler_throughput \
        --label pr2-sweep --output BENCH_scheduler.json

Runs are keyed by label: re-reporting an existing label replaces that run
in place (so iterating on a PR does not grow the file), anything else is
appended. Only aggregate-free iteration entries are recorded; per-run
context (CPU count, clock, load) is kept so trajectory numbers can be
read with the machine they came from.

Figure-reproduction benches (bench_fig*, plain binaries printing
TablePrinter tables of *simulated* evaluation metrics) fold into the same
run via repeatable --figure flags:

    tools/bench_report.py --binary build/bench/bench_scheduler_throughput \
        --figure build/bench/bench_fig11_filling \
        --label pr3-serial --output BENCH_scheduler.json

Each figure binary runs in the quick configuration with a single seed
(COORM_BENCH_QUICK=1, COORM_BENCH_SEEDS=1 — deterministic, so a changed
number in the committed trajectory is an evaluation regression, not
noise); its tables are recorded under the run's "figures" key.

Runtime counter snapshots fold in two ways: `--metrics FILE` records a
COORM_METRICS_OUT dump under the run's "metrics" key, and per-benchmark
user counters (arena_slow_path, writeback_clean, ...) are kept on each
entry. `--require-zero COUNTER` turns such a counter into a gate — CI
uses `--check-only --require-zero arena_slow_path` to fail the bench job
if the segment arena ever falls back to the heap at steady state — and
`--require-nonzero COUNTER` is the inverse gate: CI runs the incremental
scheduling bench under `--check-only --require-nonzero step2_ranges_reused
--require-nonzero pass_apps_clean` to fail the job if the pass-to-pass
cache ever stops engaging (a silent fall-back to full recomputes would
keep results correct but void the O(changed) claim).

The script needs nothing outside the Python standard library.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

_TIME_TO_US = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}


def run_binary(binary: str, benchmark_filter: str | None) -> dict:
    """Run a Google Benchmark binary and return its parsed JSON report."""
    with tempfile.TemporaryDirectory() as tmpdir:
        out_path = Path(tmpdir) / "benchmark.json"
        cmd = [
            binary,
            "--benchmark_format=json",
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
        ]
        if benchmark_filter:
            cmd.append(f"--benchmark_filter={benchmark_filter}")
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(out_path, encoding="utf-8") as handle:
            return json.load(handle)


def summarize(report: dict) -> tuple[dict, list[dict]]:
    """Reduce a Google Benchmark report to (context, benchmark entries)."""
    raw_context = report.get("context", {})
    context = {
        key: raw_context[key]
        for key in ("date", "host_name", "num_cpus", "mhz_per_cpu",
                    "library_build_type")
        if key in raw_context
    }
    entries = []
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue  # keep iteration entries only; repetitions stay raw
        scale = _TIME_TO_US.get(bench.get("time_unit", "ns"))
        if scale is None:
            raise SystemExit(
                f"unknown time unit {bench.get('time_unit')!r} "
                f"in {bench.get('name')!r}")
        entry = {
            "name": bench["name"],
            "real_time_us": round(bench["real_time"] * scale, 3),
            "cpu_time_us": round(bench["cpu_time"] * scale, 3),
            "iterations": bench.get("iterations"),
        }
        if "requests/s" in bench:
            entry["requests_per_s"] = round(bench["requests/s"], 1)
        counters = {
            key: bench[key]
            for key in ("arena_slow_path", "writeback_clean",
                        "writeback_dirty", "passes", "overlapped",
                        "messages/s", "pass_apps_clean", "pass_apps_dirty",
                        "step2_ranges_reused", "wire_bytes_per_pass",
                        "views_delta_sent", "views_delta_bytes_saved",
                        "frames_coalesced", "epoll_wakeups",
                        "pass_latency_samples", "request_rtt_samples")
            if key in bench
        }
        if counters:
            entry["counters"] = counters
        entries.append(entry)
    return context, entries


def check_zero_counters(entries: list[dict], names: list[str]) -> None:
    """Exit non-zero if any entry reports a named counter != 0."""
    offenders = [
        f"{entry['name']}: {name} = {entry['counters'][name]}"
        for entry in entries
        for name in names
        if entry.get("counters", {}).get(name) not in (None, 0, 0.0)
    ]
    if offenders:
        raise SystemExit(
            "counter(s) required to be zero are not:\n  "
            + "\n  ".join(offenders))


def check_nonzero_counters(entries: list[dict], names: list[str]) -> None:
    """Exit non-zero unless every named counter is reported and positive.

    Every entry that carries the counter must have it > 0, and at least
    one entry must carry it at all — a silently dropped counter would
    otherwise pass the gate (e.g. the incremental cache never engaging
    would show up as a missing or zero step2_ranges_reused).
    """
    offenders = []
    for name in names:
        reporting = [
            entry for entry in entries
            if name in entry.get("counters", {})
        ]
        if not reporting:
            offenders.append(f"no benchmark entry reports counter {name!r}")
            continue
        offenders.extend(
            f"{entry['name']}: {name} = {entry['counters'][name]}"
            for entry in reporting
            if not entry["counters"][name] > 0
        )
    if offenders:
        raise SystemExit(
            "counter(s) required to be nonzero are not:\n  "
            + "\n  ".join(offenders))


def parse_tables(text: str) -> list[dict]:
    """Extract TablePrinter tables (header, dashed rule, rows) from stdout.

    Columns are split on runs of >= 2 spaces — TablePrinter pads cells to
    the column width with at least two spaces between columns.
    """
    split = re.compile(r"\s{2,}")
    lines = text.splitlines()
    tables = []
    for i, line in enumerate(lines):
        stripped = line.strip()
        if i == 0 or len(stripped) < 3 or set(stripped) != {"-"}:
            continue  # the rule under the header marks a table
        columns = split.split(lines[i - 1].strip())
        rows = []
        for row_line in lines[i + 1:]:
            cells = split.split(row_line.strip())
            if not row_line.strip() or len(cells) != len(columns):
                break
            rows.append(cells)
        if rows:
            tables.append({"columns": columns, "rows": rows})
    return tables


def run_figure(binary: str) -> dict:
    """Run one figure-reproduction binary at quick scale, single seed."""
    env = dict(os.environ, COORM_BENCH_QUICK="1", COORM_BENCH_SEEDS="1")
    try:
        result = subprocess.run(
            [binary], env=env, check=True, capture_output=True, text=True)
    except subprocess.CalledProcessError as error:
        raise SystemExit(
            f"{binary}: exited with status {error.returncode}\n"
            f"--- stdout ---\n{error.stdout}\n"
            f"--- stderr ---\n{error.stderr}") from error
    tables = parse_tables(result.stdout)
    if not tables:
        raise SystemExit(f"{binary}: no tables found in its output")
    return {"tables": tables}


def load_trajectory(path: Path) -> dict:
    if path.exists():
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict) and isinstance(data.get("runs"), list):
            return data
        # The seed trajectory files were bare empty lists; upgrade in place.
        if isinstance(data, list) and not data:
            pass
        else:
            raise SystemExit(f"{path}: not a bench trajectory file")
    return {
        "description": (
            "Scheduler performance trajectory. One entry per labelled "
            "benchmark run of bench_scheduler_throughput; produced by "
            "tools/bench_report.py."),
        "runs": [],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--bench-json",
        help="existing --benchmark_format=json output to convert")
    source.add_argument(
        "--binary", action="append",
        help="benchmark binary to run with --benchmark_format=json; "
             "repeatable — entries from every binary merge into one run")
    parser.add_argument(
        "--filter", default=None,
        help="--benchmark_filter passed to --binary runs")
    parser.add_argument(
        "--figure", action="append", default=[],
        help="figure-reproduction binary to run (quick scale, one seed) and "
             "record under the run's 'figures' key; repeatable")
    parser.add_argument(
        "--metrics", default=None, type=Path,
        help="flat JSON counter snapshot (the bench binary's "
             "COORM_METRICS_OUT dump) folded into the run's 'metrics' key")
    parser.add_argument(
        "--series", action="append", default=[], metavar="NAME=FILE",
        help="JSON series file recorded under the run's 'series' key — "
             "e.g. connections_vs_latency=curve.json, where the file holds "
             "a list of data points such as the coorm_loadgen ramp's "
             "{connections, ramp_s, probe RTT percentiles}; repeatable")
    parser.add_argument(
        "--require-zero", action="append", default=[], metavar="COUNTER",
        help="fail (exit 1) if any benchmark entry reports this per-bench "
             "counter with a nonzero value; repeatable")
    parser.add_argument(
        "--require-nonzero", action="append", default=[], metavar="COUNTER",
        help="fail (exit 1) unless at least one benchmark entry reports "
             "this per-bench counter and every reporting entry has it > 0; "
             "repeatable")
    parser.add_argument(
        "--check-only", action="store_true",
        help="run the benchmarks and --require-zero checks without touching "
             "the trajectory file (--label/--output not needed)")
    parser.add_argument(
        "--label",
        help="run label; an existing run with this label is replaced")
    parser.add_argument(
        "--commit", default=None,
        help="commit hash to record with the run (optional)")
    parser.add_argument(
        "--notes", default=None,
        help="free-form note stored with the run (optional)")
    parser.add_argument(
        "--output", type=Path,
        help="trajectory file to update, e.g. BENCH_scheduler.json")
    args = parser.parse_args()
    if not args.check_only and (args.label is None or args.output is None):
        parser.error("--label and --output are required unless --check-only")

    if args.bench_json:
        with open(args.bench_json, encoding="utf-8") as handle:
            reports = [json.load(handle)]
    else:
        reports = [run_binary(binary, args.filter) for binary in args.binary]

    context: dict = {}
    entries: list[dict] = []
    for report in reports:
        report_context, report_entries = summarize(report)
        context = context or report_context
        entries.extend(report_entries)
    if not entries:
        raise SystemExit("no benchmark entries found in the report")

    if args.require_zero:
        check_zero_counters(entries, args.require_zero)
    if args.require_nonzero:
        check_nonzero_counters(entries, args.require_nonzero)
    if args.check_only:
        nchecks = len(args.require_zero) + len(args.require_nonzero)
        checks = f", {nchecks} counter check(s) passed" if nchecks else ""
        print(f"check-only: {len(entries)} benchmarks{checks}")
        return

    run = {
        "label": args.label,
        "recorded_at": datetime.now(timezone.utc)
        .isoformat(timespec="seconds"),
        "context": context,
        "benchmarks": entries,
    }
    if args.commit:
        run["commit"] = args.commit
    if args.notes:
        run["notes"] = args.notes
    if args.metrics:
        with open(args.metrics, encoding="utf-8") as handle:
            run["metrics"] = json.load(handle)
    if args.series:
        run["series"] = {}
        for spec in args.series:
            name, sep, path = spec.partition("=")
            if not sep or not name or not path:
                raise SystemExit(f"--series wants NAME=FILE, got {spec!r}")
            with open(path, encoding="utf-8") as handle:
                run["series"][name] = json.load(handle)
    if args.figure:
        run["figures"] = {
            Path(binary).name: run_figure(binary) for binary in args.figure
        }

    trajectory = load_trajectory(args.output)
    trajectory["runs"] = [
        existing for existing in trajectory["runs"]
        if existing.get("label") != args.label
    ]
    trajectory["runs"].append(run)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2)
        handle.write("\n")
    figures = f" + {len(args.figure)} figure benches" if args.figure else ""
    print(f"{args.output}: recorded run {args.label!r} "
          f"({len(entries)} benchmarks{figures})")


if __name__ == "__main__":
    sys.exit(main())

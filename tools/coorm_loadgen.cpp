// coorm_loadgen: drives the scripted application behaviours of
// exp/scenario (rigid jobs, malleable PSAs) against a live coorm_rmsd
// daemon over TCP — the same actor classes the simulator runs, attached to
// net::RmsClient links instead of in-process Sessions.
//
//   coorm_rmsd   --listen 127.0.0.1:7788 --nodes 128 --resched 0.1 &
//   coorm_loadgen --connect 127.0.0.1:7788 --jobs 32 --psa 1 --until 30
//
// Rigid jobs submit one non-preemptible request each (sizes/durations
// drawn from --seed) and disconnect when done; PSAs fill leftover capacity
// preemptibly for the whole run. Reports wall-clock requests/s at exit.
#include <chrono>
#include <csignal>
#include <iostream>
#include <memory>
#include <vector>

#include "cli_options.hpp"
#include "coorm/apps/psa.hpp"
#include "coorm/apps/rigid.hpp"
#include "coorm/common/rng.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/poll_executor.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace coorm;

  const cli::ParseResult parsed = cli::parseArgs(argc, argv);
  if (parsed.status == cli::ParseStatus::kHelp) {
    cli::printUsage(std::cout);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "coorm_loadgen: " << parsed.error << "\n";
    cli::printUsage(std::cerr);
    return 2;
  }
  const cli::Options& options = parsed.options;
  if (!options.connect) {
    std::cerr << "coorm_loadgen: --connect ADDR:PORT is required\n";
    return 2;
  }
  if (options.syntheticJobs <= 0 && options.psaTasks.empty()) {
    std::cerr << "coorm_loadgen: nothing to drive (use --jobs and/or --psa)\n";
    return 2;
  }

  net::PollExecutor executor;
  Rng rng(options.seed);

  struct Actor {
    std::unique_ptr<net::RmsClient> client;
    std::unique_ptr<Application> app;
    RigidApp* rigid = nullptr;  ///< non-null for rigid jobs
  };
  std::vector<Actor> actors;

  const auto addActor = [&](std::unique_ptr<Application> app,
                            const std::string& name) -> Actor& {
    Actor actor;
    actor.client = std::make_unique<net::RmsClient>(
        executor, net::RmsClient::Config{*options.connect, name});
    actor.client->connect(*app);
    app->attach(*actor.client);
    actor.app = std::move(app);
    actors.push_back(std::move(actor));
    return actors.back();
  };

  try {
    for (int j = 0; j < options.syntheticJobs; ++j) {
      RigidApp::Config config;
      config.nodes = rng.uniformInt(1, 8);
      config.duration = secF(rng.uniformReal(1.0, 5.0));
      const std::string name = "job" + std::to_string(j);
      auto app = std::make_unique<RigidApp>(executor, name, config);
      RigidApp* rigid = app.get();
      addActor(std::move(app), name).rigid = rigid;
    }
    for (std::size_t p = 0; p < options.psaTasks.size(); ++p) {
      PsaApp::Config config;
      config.taskDuration = options.psaTasks[p];
      config.rngSeed = options.seed + p;
      const std::string name = "psa" + std::to_string(p);
      addActor(std::make_unique<PsaApp>(executor, name, config), name);
    }
  } catch (const std::exception& error) {
    std::cerr << "coorm_loadgen: " << error.what() << "\n";
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.until);
  while (g_stop == 0 && std::chrono::steady_clock::now() < deadline) {
    // Rigid jobs run to completion; PSAs never finish on their own, so a
    // PSA-carrying run always lasts until the deadline (that is the point
    // of a load generator).
    bool allRigidDone = options.psaTasks.empty();
    for (const Actor& actor : actors) {
      if (actor.rigid != nullptr && !actor.rigid->finished() &&
          !actor.app->wasKilled()) {
        allRigidDone = false;
        break;
      }
    }
    if (allRigidDone) break;
    executor.runOne(msec(50));
  }

  std::uint64_t requests = 0;
  int finished = 0;
  int killed = 0;
  for (Actor& actor : actors) {
    requests += actor.client->requestsSent();
    finished += actor.rigid != nullptr && actor.rigid->finished() ? 1 : 0;
    killed += actor.app->wasKilled() ? 1 : 0;
    actor.client->disconnect();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "coorm_loadgen: " << actors.size() << " apps, " << finished
            << " rigid jobs finished, " << killed << " killed, " << requests
            << " requests in " << seconds << " s ("
            << (seconds > 0 ? static_cast<double>(requests) / seconds : 0.0)
            << " requests/s)" << std::endl;
  return 0;
}

// coorm_loadgen: drives the scripted application behaviours of
// exp/scenario (rigid jobs, malleable PSAs, evolving AMR apps) against a
// live coorm_rmsd daemon over TCP — the same actor classes the simulator
// runs, attached to net::RmsClient links instead of in-process Sessions.
//
//   coorm_rmsd   --listen 127.0.0.1:7788 --nodes 128 --resched 0.1 &
//   coorm_loadgen --connect 127.0.0.1:7788 --jobs 32 --psa 1 --until 30
//
// Rigid jobs submit one non-preemptible request each (sizes/durations
// drawn from --seed) and disconnect when done; PSAs fill leftover capacity
// preemptibly for the whole run; --amr adds one evolving AMR application
// whose working set keeps the views changing. Reports wall-clock
// requests/s at exit.
//
// C100k mode: --connections N additionally ramps up N view-subscriber
// sessions (HELLO, then hold the session and apply every view push) in
// batches, which is what the epoll serving path is sized for; --probe M
// then measures M REQUEST round trips under that load and reports the RTT
// distribution, and the daemon's delta/coalescing counters are queried
// over STATS for the wire-savings report:
//
//   coorm_loadgen --connect 127.0.0.1:7788 --psa 1
//       --connections 10000 --probe 200 --until 30     (one command line)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <iostream>
#include <memory>
#include <vector>

#include "cli_options.hpp"
#include "coorm/amr/static_analysis.hpp"
#include "coorm/amr/working_set.hpp"
#include "coorm/apps/amr_app.hpp"
#include "coorm/apps/psa.hpp"
#include "coorm/apps/rigid.hpp"
#include "coorm/common/rng.hpp"
#include "coorm/common/trace.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/io_executor.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

/// A session that only receives: it holds its AppLink open and counts the
/// view pushes it applies. Ten thousand of these are the C100k workload.
struct Subscriber final : coorm::AppEndpoint {
  std::uint64_t views = 0;
  void onViews(const coorm::View&, const coorm::View&) override { ++views; }
};

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coorm;

  const cli::ParseResult parsed = cli::parseArgs(argc, argv);
  if (parsed.status == cli::ParseStatus::kHelp) {
    cli::printUsage(std::cout);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "coorm_loadgen: " << parsed.error << "\n";
    cli::printUsage(std::cerr);
    return 2;
  }
  const cli::Options& options = parsed.options;
  if (!options.connect) {
    std::cerr << "coorm_loadgen: --connect ADDR:PORT is required\n";
    return 2;
  }
  if (options.syntheticJobs <= 0 && options.psaTasks.empty() &&
      !options.amrPeakGiB && options.connections <= 1) {
    std::cerr << "coorm_loadgen: nothing to drive (use --jobs, --psa, "
                 "--amr and/or --connections)\n";
    return 2;
  }

  // Thousands of client sockets need headroom above the default soft
  // RLIMIT_NOFILE (often 1024).
  net::raiseFdLimit();
  if (!options.traceOut.empty()) trace::enable();
  auto executorPtr = net::makeIoExecutor(options.runtime.ioBackend);
  net::IoExecutor& executor = *executorPtr;
  Rng rng(options.seed);

  struct Actor {
    std::unique_ptr<net::RmsClient> client;
    std::unique_ptr<Application> app;
    RigidApp* rigid = nullptr;  ///< non-null for rigid jobs
  };
  std::vector<Actor> actors;

  const auto addActor = [&](std::unique_ptr<Application> app,
                            const std::string& name) -> Actor& {
    Actor actor;
    actor.client = std::make_unique<net::RmsClient>(
        executor, net::RmsClient::Config{*options.connect, name});
    actor.client->connect(*app);
    app->attach(*actor.client);
    actor.app = std::move(app);
    actors.push_back(std::move(actor));
    return actors.back();
  };

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::vector<std::unique_ptr<Subscriber>> subscribers;
  std::vector<std::unique_ptr<net::RmsClient>> subscriberClients;

  try {
    for (int j = 0; j < options.syntheticJobs; ++j) {
      RigidApp::Config config;
      config.nodes = rng.uniformInt(1, 8);
      config.duration = secF(rng.uniformReal(1.0, 5.0));
      const std::string name = "job" + std::to_string(j);
      auto app = std::make_unique<RigidApp>(executor, name, config);
      RigidApp* rigid = app.get();
      addActor(std::move(app), name).rigid = rigid;
    }
    for (std::size_t p = 0; p < options.psaTasks.size(); ++p) {
      PsaApp::Config config;
      config.taskDuration = options.psaTasks[p];
      config.rngSeed = options.seed + p;
      const std::string name = "psa" + std::to_string(p);
      addActor(std::make_unique<PsaApp>(executor, name, config), name);
    }
    if (options.amrPeakGiB) {
      // Same construction as coorm_sim: the evolving working set makes the
      // AMR renegotiate its allocation, which keeps the pushed views
      // changing — the traffic the delta encoding is measured against.
      WorkingSetParams wsParams;
      wsParams.steps = options.amrSteps;
      const WorkingSetModel wsModel(wsParams);
      Rng child = rng.fork();
      const auto sizes =
          wsModel.generateSizesMiB(child, *options.amrPeakGiB * 1024.0);
      const SpeedupModel model;
      const StaticAnalysis analysis(model, sizes);
      const NodeCount neq =
          analysis.equivalentStatic(0.75).value_or(options.nodes / 2);
      AmrApp::Config amrCfg;
      amrCfg.cluster = ClusterId{0};
      amrCfg.sizesMiB = sizes;
      amrCfg.preallocNodes = std::clamp<NodeCount>(
          static_cast<NodeCount>(options.overcommit *
                                 static_cast<double>(neq)),
          1, options.nodes);
      amrCfg.mode =
          options.amrStatic ? AmrApp::Mode::kStatic : AmrApp::Mode::kDynamic;
      amrCfg.announceInterval = options.announce;
      addActor(std::make_unique<AmrApp>(executor, "amr", amrCfg), "amr");
    }

    // The C100k ramp. Batched so the report shows progress and the loop
    // gets to drain queued view pushes between batches — the daemon's
    // outbound buffers must not grow while the ramp is still dialling.
    if (options.connections > 1) {
      const auto rampStart = std::chrono::steady_clock::now();
      constexpr int kBatch = 512;
      subscribers.reserve(static_cast<std::size_t>(options.connections));
      subscriberClients.reserve(static_cast<std::size_t>(options.connections));
      for (int c = 0; c < options.connections && g_stop == 0; ++c) {
        auto sub = std::make_unique<Subscriber>();
        auto client = std::make_unique<net::RmsClient>(
            executor, net::RmsClient::Config{*options.connect,
                                             "sub" + std::to_string(c)});
        client->connect(*sub);
        subscribers.push_back(std::move(sub));
        subscriberClients.push_back(std::move(client));
        if ((c + 1) % kBatch == 0) {
          executor.runOne(0);
          std::cout << "coorm_loadgen: ramped " << (c + 1) << "/"
                    << options.connections << " connections" << std::endl;
        }
      }
      const double rampSeconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        rampStart)
              .count();
      std::cout << "coorm_loadgen: connections=" << subscriberClients.size()
                << " ramp_s=" << rampSeconds << std::endl;
    }
  } catch (const std::exception& error) {
    std::cerr << "coorm_loadgen: " << error.what() << "\n";
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::milliseconds(options.until);
  while (g_stop == 0 && std::chrono::steady_clock::now() < deadline) {
    // Rigid jobs run to completion; PSAs, AMRs mid-run and held-open
    // subscriber sessions never finish on their own, so those runs last
    // until the deadline (that is the point of a load generator).
    bool allRigidDone = options.psaTasks.empty() && !options.amrPeakGiB &&
                        subscriberClients.empty();
    for (const Actor& actor : actors) {
      if (actor.rigid != nullptr && !actor.rigid->finished() &&
          !actor.app->wasKilled()) {
        allRigidDone = false;
        break;
      }
    }
    if (allRigidDone) break;
    executor.runOne(msec(50));
  }

  // Latency probes: REQUEST round trips on a fresh session while the
  // subscriber load is still attached. Between probes the loop runs once
  // so the held sessions keep draining their pushes.
  if (options.probes > 0 && g_stop == 0) {
    try {
      Subscriber probeEndpoint;
      net::RmsClient probe(
          executor, net::RmsClient::Config{*options.connect, "probe"});
      probe.connect(probeEndpoint);
      RequestSpec spec;
      spec.cluster = ClusterId{0};
      spec.nodes = 1;
      spec.duration = sec(60);
      std::vector<double> rttMs;
      rttMs.reserve(static_cast<std::size_t>(options.probes));
      for (int p = 0; p < options.probes && g_stop == 0; ++p) {
        const auto t0 = std::chrono::steady_clock::now();
        const RequestId id = probe.request(spec);
        rttMs.push_back(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
        if (id.valid()) probe.done(id);
        executor.runOne(0);
      }
      probe.disconnect();
      std::sort(rttMs.begin(), rttMs.end());
      double sum = 0;
      for (const double v : rttMs) sum += v;
      std::cout << "coorm_loadgen: probe rtt_ms n=" << rttMs.size()
                << " min=" << (rttMs.empty() ? 0.0 : rttMs.front())
                << " mean=" << (rttMs.empty() ? 0.0 : sum / rttMs.size())
                << " p50=" << percentile(rttMs, 0.5)
                << " p99=" << percentile(rttMs, 0.99)
                << " max=" << (rttMs.empty() ? 0.0 : rttMs.back())
                << std::endl;
    } catch (const std::exception& error) {
      std::cerr << "coorm_loadgen: probe failed: " << error.what() << "\n";
    }
  }

  // The daemon's own counters close the wire-savings loop: how many
  // pushes went out as deltas, how many bytes that saved, how many frames
  // each coalesced write batched.
  if (g_stop == 0) {
    try {
      net::RmsClient statsClient(
          executor, net::RmsClient::Config{*options.connect, "statsq"});
      statsClient.dial();
      if (const auto s = statsClient.stats()) {
        std::cout << "coorm_loadgen: daemon schedule_passes="
                  << (*s)[metrics::Event::kSchedulePasses]
                  << " wire_bytes_out=" << (*s)[metrics::Event::kWireBytesOut]
                  << " views_delta_sent="
                  << (*s)[metrics::Event::kViewsDeltaSent]
                  << " views_delta_bytes_saved="
                  << (*s)[metrics::Event::kViewsDeltaBytesSaved]
                  << " views_resync=" << (*s)[metrics::Event::kViewsResync]
                  << " frames_coalesced="
                  << (*s)[metrics::Event::kFramesCoalesced]
                  << " epoll_wakeups=" << (*s)[metrics::Event::kEpollWakeups]
                  << std::endl;
      }
      statsClient.disconnect();
    } catch (const std::exception&) {
      // A daemon that went away mid-run already showed up as kills above.
    }
  }

  std::uint64_t requests = 0;
  int finished = 0;
  int killed = 0;
  for (Actor& actor : actors) {
    requests += actor.client->requestsSent();
    finished += actor.rigid != nullptr && actor.rigid->finished() ? 1 : 0;
    killed += actor.app->wasKilled() ? 1 : 0;
    actor.client->disconnect();
  }
  std::uint64_t viewsApplied = 0;
  for (std::size_t i = 0; i < subscriberClients.size(); ++i) {
    viewsApplied += subscribers[i]->views;
    subscriberClients[i]->disconnect();
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::cout << "coorm_loadgen: " << actors.size() << " apps, " << finished
            << " rigid jobs finished, " << killed << " killed, " << requests
            << " requests in " << seconds << " s ("
            << (seconds > 0 ? static_cast<double>(requests) / seconds : 0.0)
            << " requests/s)";
  if (!subscriberClients.empty()) {
    std::cout << ", " << subscriberClients.size() << " subscribers applied "
              << viewsApplied << " view pushes";
  }
  std::cout << std::endl;
  if (!options.traceOut.empty()) {
    std::string error;
    if (!trace::writeChromeTrace(options.traceOut, &error)) {
      std::cerr << "coorm_loadgen: --trace-out: " << error << "\n";
      return 1;
    }
    std::cout << "coorm_loadgen: trace written to " << options.traceOut
              << std::endl;
  }
  return 0;
}

#include "cli_options.hpp"

#include <cstdlib>
#include <cstring>
#include <ostream>

namespace coorm::cli {

void printUsage(std::ostream& out) {
  out << "usage: coorm_sim|coorm_rmsd|coorm_loadgen [options]\n"
         "  --nodes N          cluster size (default 128)\n"
         "  --seed S           random seed (default 1)\n"
         "  --amr GIB          add an evolving AMR app with a working-set\n"
         "                     peak of GIB GiB\n"
         "  --amr-steps N      AMR steps (default 200)\n"
         "  --amr-static       force the AMR to use its whole pre-allocation\n"
         "  --overcommit F     pre-allocation = F x equivalent static\n"
         "  --announce SECS    announced updates (default 0 = spontaneous)\n"
         "  --psa SECS         add a malleable PSA with SECS-long tasks\n"
         "                     (repeatable)\n"
         "  --jobs N           add N synthetic rigid jobs\n"
         "  --swf FILE         replay a rigid SWF trace\n"
         "  --strict           strict equi-partitioning (no filling)\n"
         "  --threads N        scheduler worker threads (default 1; any\n"
         "                     value yields bit-identical schedules)\n"
         "  --pipeline on|off  two-stage pipelined serving (default on);\n"
         "                     off = serial back-to-back scheduling passes\n"
         "                     (identical results). --no-pipeline is an\n"
         "                     alias for --pipeline off\n"
         "  --incremental on|off\n"
         "                     incremental scheduling passes (default on);\n"
         "                     off = every pass re-derives every app\n"
         "                     (identical results)\n"
         "  --until SECS       horizon when no AMR is present (default 86400)\n"
         "  --timeline         render an ASCII allocation timeline\n"
         "  --trace            dump the protocol trace\n"
         "  --listen ADDR:PORT coorm_rmsd: bind address (\":0\" = ephemeral\n"
         "                     port on 127.0.0.1)\n"
         "  --connect ADDR:PORT\n"
         "                     coorm_loadgen: daemon address to dial\n"
         "  --resched SECS     re-scheduling interval (default 1.0)\n"
         "  --stats            coorm_rmsd: query a running daemon's metrics\n"
         "                     via --connect and print them, then exit\n"
         "  --journal FILE     coorm_rmsd: write-ahead journal; replayed on\n"
         "                     startup to recover sessions after a crash\n"
         "  --idle-deadline SECS\n"
         "                     coorm_rmsd: drop peers silent for SECS\n"
         "                     (PINGed at SECS/2; default 0 = never)\n"
         "  --resume-grace SECS\n"
         "                     coorm_rmsd: window a vanished client may\n"
         "                     RESUME its session in (default 30)\n"
         "  --io-backend poll|epoll\n"
         "                     readiness backend for the event loop\n"
         "                     (default epoll where available; poll is the\n"
         "                     portable fallback)\n"
         "  --delta-views on|off\n"
         "                     coorm_rmsd: sequenced VIEWS_DELTA pushes\n"
         "                     (default on; off = full VIEWS per pass)\n"
         "  --coalesce on|off  coorm_rmsd: batch each pass commit's frames\n"
         "                     into one write per session (default on)\n"
         "  --connections N    coorm_loadgen: concurrent sessions to hold\n"
         "                     open (default 1)\n"
         "  --probe M          coorm_loadgen: REQUEST round-trip latency\n"
         "                     probes after the ramp (default 0 = none)\n"
         "  --trace-out FILE   write pass-phase/I/O spans as Chrome\n"
         "                     trace-event JSON on exit (chrome://tracing)\n"
         "  --slow-pass-ms N   log a one-line phase breakdown for passes\n"
         "                     slower than N ms (default 0 = never)\n"
         "  --metrics-listen ADDR:PORT\n"
         "                     coorm_rmsd: serve Prometheus text format at\n"
         "                     http://ADDR:PORT/metrics\n"
         "  --stats-all        with --stats: print zero-valued counters and\n"
         "                     empty histograms too\n"
         "  --help             this text\n";
}

ParseResult parseArgs(int argc, const char* const* argv) {
  ParseResult result;
  Options& options = result.options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      result.status = ParseStatus::kHelp;
      return result;
    } else if (arg == "--nodes" && (v = value(i))) {
      options.nodes = std::atoll(v);
    } else if (arg == "--seed" && (v = value(i))) {
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--amr" && (v = value(i))) {
      options.amrPeakGiB = std::atof(v);
    } else if (arg == "--amr-steps" && (v = value(i))) {
      options.amrSteps = std::atoi(v);
    } else if (arg == "--amr-static") {
      options.amrStatic = true;
    } else if (arg == "--overcommit" && (v = value(i))) {
      options.overcommit = std::atof(v);
    } else if (arg == "--announce" && (v = value(i))) {
      options.announce = secF(std::atof(v));
    } else if (arg == "--psa" && (v = value(i))) {
      options.psaTasks.push_back(secF(std::atof(v)));
    } else if (arg == "--jobs" && (v = value(i))) {
      options.syntheticJobs = std::atoi(v);
    } else if (arg == "--swf" && (v = value(i))) {
      options.swfPath = v;
    } else if (arg == "--strict") {
      options.runtime.strictEquiPartition = true;
    } else if (arg == "--threads" && (v = value(i))) {
      options.runtime.threads = std::atoi(v);
    } else if (arg == "--pipeline" && (v = value(i))) {
      if (std::strcmp(v, "on") == 0) {
        options.runtime.pipeline = true;
      } else if (std::strcmp(v, "off") == 0) {
        options.runtime.pipeline = false;
      } else {
        result.error = std::string("bad --pipeline value (want on|off): ") + v;
        return result;
      }
    } else if (arg == "--no-pipeline") {  // alias for --pipeline off
      options.runtime.pipeline = false;
    } else if (arg == "--incremental" && (v = value(i))) {
      if (std::strcmp(v, "on") == 0) {
        options.runtime.incremental = true;
      } else if (std::strcmp(v, "off") == 0) {
        options.runtime.incremental = false;
      } else {
        result.error =
            std::string("bad --incremental value (want on|off): ") + v;
        return result;
      }
    } else if (arg == "--until" && (v = value(i))) {
      options.until = secF(std::atof(v));
    } else if (arg == "--timeline") {
      options.showTimeline = true;
    } else if (arg == "--trace") {
      options.showTrace = true;
    } else if (arg == "--listen" && (v = value(i))) {
      options.listen = net::parseEndpoint(v);
      if (!options.listen) {
        result.error = std::string("bad --listen endpoint: ") + v;
        return result;
      }
    } else if (arg == "--connect" && (v = value(i))) {
      options.connect = net::parseEndpoint(v);
      if (!options.connect) {
        result.error = std::string("bad --connect endpoint: ") + v;
        return result;
      }
    } else if (arg == "--resched" && (v = value(i))) {
      options.runtime.reschedInterval = secF(std::atof(v));
    } else if (arg == "--stats") {
      options.statsQuery = true;
    } else if (arg == "--journal" && (v = value(i))) {
      options.journalPath = v;
    } else if (arg == "--idle-deadline" && (v = value(i))) {
      options.idleDeadline = secF(std::atof(v));
    } else if (arg == "--resume-grace" && (v = value(i))) {
      options.resumeGrace = secF(std::atof(v));
    } else if (arg == "--io-backend" && (v = value(i))) {
      if (std::strcmp(v, "poll") == 0) {
        options.runtime.ioBackend = IoBackend::kPoll;
      } else if (std::strcmp(v, "epoll") == 0) {
        options.runtime.ioBackend = IoBackend::kEpoll;
      } else {
        result.error =
            std::string("bad --io-backend value (want poll|epoll): ") + v;
        return result;
      }
    } else if (arg == "--delta-views" && (v = value(i))) {
      if (std::strcmp(v, "on") == 0) {
        options.deltaViews = true;
      } else if (std::strcmp(v, "off") == 0) {
        options.deltaViews = false;
      } else {
        result.error =
            std::string("bad --delta-views value (want on|off): ") + v;
        return result;
      }
    } else if (arg == "--coalesce" && (v = value(i))) {
      if (std::strcmp(v, "on") == 0) {
        options.coalesce = true;
      } else if (std::strcmp(v, "off") == 0) {
        options.coalesce = false;
      } else {
        result.error = std::string("bad --coalesce value (want on|off): ") + v;
        return result;
      }
    } else if (arg == "--connections" && (v = value(i))) {
      options.connections = std::atoi(v);
    } else if (arg == "--probe" && (v = value(i))) {
      options.probes = std::atoi(v);
    } else if (arg == "--trace-out" && (v = value(i))) {
      options.traceOut = v;
    } else if (arg == "--slow-pass-ms" && (v = value(i))) {
      options.slowPassMs = std::atoll(v);
    } else if (arg == "--metrics-listen" && (v = value(i))) {
      options.metricsListen = net::parseEndpoint(v);
      if (!options.metricsListen) {
        result.error = std::string("bad --metrics-listen endpoint: ") + v;
        return result;
      }
    } else if (arg == "--stats-all") {
      options.statsAll = true;
    } else {
      result.error = "unknown or incomplete option: " + arg;
      return result;
    }
  }
  if (options.nodes <= 0 || options.amrSteps <= 0 ||
      options.overcommit <= 0.0 || options.runtime.threads <= 0 ||
      options.runtime.reschedInterval <= 0 || options.idleDeadline < 0 ||
      options.resumeGrace < 0 || options.connections <= 0 ||
      options.probes < 0 || options.slowPassMs < 0) {
    result.error = "invalid numeric option";
    return result;
  }
  result.status = ParseStatus::kOk;
  return result;
}

}  // namespace coorm::cli

// coorm_sim — command-line driver for the CooRMv2 simulator.
//
// Builds a scenario from command-line options (evolving AMR applications,
// malleable PSAs, synthetic rigid workloads or SWF traces), runs it, and
// reports allocations, utilization, and optionally an ASCII allocation
// timeline and the full protocol trace.
//
// Examples:
//   coorm_sim --nodes 256 --amr 200 --psa 600 --timeline
//   coorm_sim --nodes 128 --jobs 50 --psa 60 --until 86400
//   coorm_sim --swf trace.swf --nodes 512
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "coorm/amr/static_analysis.hpp"
#include "coorm/amr/working_set.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"
#include "coorm/workload/player.hpp"

using namespace coorm;

namespace {

struct Options {
  NodeCount nodes = 128;
  std::uint64_t seed = 1;
  std::optional<double> amrPeakGiB;
  int amrSteps = 200;
  double overcommit = 1.0;
  Time announce = 0;
  bool amrStatic = false;
  std::vector<Time> psaTasks;
  int syntheticJobs = 0;
  std::string swfPath;
  bool strict = false;
  Time until = hours(24);
  bool showTimeline = false;
  bool showTrace = false;
};

void printUsage(std::ostream& out) {
  out << "usage: coorm_sim [options]\n"
         "  --nodes N          cluster size (default 128)\n"
         "  --seed S           random seed (default 1)\n"
         "  --amr GIB          add an evolving AMR app with a working-set\n"
         "                     peak of GIB GiB\n"
         "  --amr-steps N      AMR steps (default 200)\n"
         "  --amr-static       force the AMR to use its whole pre-allocation\n"
         "  --overcommit F     pre-allocation = F x equivalent static\n"
         "  --announce SECS    announced updates (default 0 = spontaneous)\n"
         "  --psa SECS         add a malleable PSA with SECS-long tasks\n"
         "                     (repeatable)\n"
         "  --jobs N           add N synthetic rigid jobs\n"
         "  --swf FILE         replay a rigid SWF trace\n"
         "  --strict           strict equi-partitioning (no filling)\n"
         "  --until SECS       horizon when no AMR is present (default 86400)\n"
         "  --timeline         render an ASCII allocation timeline\n"
         "  --trace            dump the protocol trace\n"
         "  --help             this text\n";
}

std::optional<Options> parseArgs(int argc, char** argv) {
  Options options;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      std::exit(0);
    } else if (arg == "--nodes" && (v = value(i))) {
      options.nodes = std::atoll(v);
    } else if (arg == "--seed" && (v = value(i))) {
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--amr" && (v = value(i))) {
      options.amrPeakGiB = std::atof(v);
    } else if (arg == "--amr-steps" && (v = value(i))) {
      options.amrSteps = std::atoi(v);
    } else if (arg == "--amr-static") {
      options.amrStatic = true;
    } else if (arg == "--overcommit" && (v = value(i))) {
      options.overcommit = std::atof(v);
    } else if (arg == "--announce" && (v = value(i))) {
      options.announce = secF(std::atof(v));
    } else if (arg == "--psa" && (v = value(i))) {
      options.psaTasks.push_back(secF(std::atof(v)));
    } else if (arg == "--jobs" && (v = value(i))) {
      options.syntheticJobs = std::atoi(v);
    } else if (arg == "--swf" && (v = value(i))) {
      options.swfPath = v;
    } else if (arg == "--strict") {
      options.strict = true;
    } else if (arg == "--until" && (v = value(i))) {
      options.until = secF(std::atof(v));
    } else if (arg == "--timeline") {
      options.showTimeline = true;
    } else if (arg == "--trace") {
      options.showTrace = true;
    } else {
      std::cerr << "unknown or incomplete option: " << arg << "\n\n";
      printUsage(std::cerr);
      return std::nullopt;
    }
  }
  if (options.nodes <= 0 || options.amrSteps <= 0 ||
      options.overcommit <= 0.0) {
    std::cerr << "invalid numeric option\n";
    return std::nullopt;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = parseArgs(argc, argv);
  if (!options) return 2;

  ScenarioConfig config;
  config.nodes = options->nodes;
  config.server.strictEquiPartition = options->strict;
  config.recordTrace = options->showTrace;
  Scenario sc(config);
  Rng rng(options->seed);

  // Evolving AMR application.
  AmrApp* amr = nullptr;
  if (options->amrPeakGiB) {
    WorkingSetParams wsParams;
    wsParams.steps = options->amrSteps;
    const WorkingSetModel wsModel(wsParams);
    Rng child = rng.fork();
    const auto sizes =
        wsModel.generateSizesMiB(child, *options->amrPeakGiB * 1024.0);
    const SpeedupModel model;
    const StaticAnalysis analysis(model, sizes);
    const NodeCount neq = analysis.equivalentStatic(0.75).value_or(
        options->nodes / 2);

    AmrApp::Config amrCfg;
    amrCfg.cluster = sc.cluster();
    amrCfg.sizesMiB = sizes;
    amrCfg.preallocNodes = std::clamp<NodeCount>(
        static_cast<NodeCount>(options->overcommit *
                               static_cast<double>(neq)),
        1, options->nodes);
    amrCfg.walltime = hours(24 * 7);
    amrCfg.mode =
        options->amrStatic ? AmrApp::Mode::kStatic : AmrApp::Mode::kDynamic;
    amrCfg.announceInterval = options->announce;
    amr = &sc.addAmr(amrCfg, "amr");
    std::cout << "amr: peak " << *options->amrPeakGiB << " GiB, n_eq ~ "
              << neq << ", pre-allocation " << amrCfg.preallocNodes
              << " nodes\n";
  }

  // Malleable PSAs.
  std::vector<PsaApp*> psas;
  for (std::size_t i = 0; i < options->psaTasks.size(); ++i) {
    PsaApp::Config psaCfg;
    psaCfg.cluster = sc.cluster();
    psaCfg.taskDuration = options->psaTasks[i];
    psaCfg.rngSeed = options->seed * 100 + i;
    psas.push_back(&sc.addPsa(psaCfg, "psa" + std::to_string(i + 1)));
  }

  // Rigid workload: SWF trace or synthetic.
  std::unique_ptr<WorkloadPlayer> player;
  if (!options->swfPath.empty()) {
    std::ifstream in(options->swfPath);
    if (!in) {
      std::cerr << "cannot open " << options->swfPath << '\n';
      return 2;
    }
    std::string error;
    const auto workload = Workload::parseSwf(in, &error);
    if (!workload) {
      std::cerr << "SWF parse error: " << error << '\n';
      return 2;
    }
    std::cout << "trace: " << workload->size() << " jobs\n";
    player = std::make_unique<WorkloadPlayer>(sc.engine(), sc.server(),
                                              sc.cluster(), *workload);
  } else if (options->syntheticJobs > 0) {
    SyntheticWorkloadParams params;
    params.jobs = options->syntheticJobs;
    params.maxProcessors = std::max<NodeCount>(options->nodes / 2, 1);
    Rng child = rng.fork();
    const Workload workload = generateWorkload(params, child);
    std::cout << "synthetic workload: " << workload.size() << " jobs\n";
    player = std::make_unique<WorkloadPlayer>(sc.engine(), sc.server(),
                                              sc.cluster(), workload);
  }

  // Run.
  Time end;
  if (amr != nullptr) {
    end = sc.runUntilFinished(*amr, hours(24 * 30));
  } else {
    end = sc.runFor(options->until);
  }

  // Report.
  std::cout << "\n=== results (t = " << toSeconds(end) << " s) ===\n";
  TablePrinter table({"application", "allocated(node·s)", "notes"});
  if (amr != nullptr) {
    table.addRow({"amr",
                  TablePrinter::num(
                      sc.metrics().allocatedNodeSeconds(amr->appId()), 0),
                  (amr->finished() ? "finished, " : "running, ") +
                      std::to_string(amr->stepsCompleted()) + " steps"});
  }
  for (PsaApp* psa : psas) {
    table.addRow({psa->name(),
                  TablePrinter::num(
                      sc.metrics().allocatedNodeSeconds(psa->appId()), 0),
                  std::to_string(psa->tasksCompleted()) + " tasks, " +
                      std::to_string(psa->tasksKilled()) + " killed"});
  }
  table.print(std::cout);

  if (player != nullptr) {
    const WorkloadStats stats = player->stats(options->nodes);
    std::cout << "rigid jobs: " << stats.completed << '/' << stats.submitted
              << " completed, mean wait "
              << TablePrinter::num(stats.meanWaitSeconds, 0)
              << " s, mean bounded slowdown "
              << TablePrinter::num(stats.meanBoundedSlowdown, 2) << '\n';
  }

  double waste = 0.0;
  for (PsaApp* psa : psas) waste += psa->wasteNodeSeconds();
  const double capacity =
      static_cast<double>(options->nodes) * toSeconds(end);
  if (capacity > 0) {
    std::cout << "used resources: "
              << TablePrinter::num((sc.metrics().totalAllocatedNodeSeconds() -
                                    waste) /
                                       capacity * 100.0,
                                   1)
              << " % (waste " << TablePrinter::num(waste, 0) << " node·s)\n";
  }

  if (options->showTimeline) {
    std::cout << "\n=== allocation timeline ===\n";
    sc.timeline().render(std::cout, 0, end, options->nodes);
  }
  if (options->showTrace) {
    std::cout << "\n=== protocol trace ===\n";
    sc.trace().dump(std::cout);
  }
  return 0;
}

// coorm_sim — command-line driver for the CooRMv2 simulator.
//
// Builds a scenario from command-line options (evolving AMR applications,
// malleable PSAs, synthetic rigid workloads or SWF traces), runs it, and
// reports allocations, utilization, and optionally an ASCII allocation
// timeline and the full protocol trace.
//
// Examples:
//   coorm_sim --nodes 256 --amr 200 --psa 600 --timeline
//   coorm_sim --nodes 128 --jobs 50 --psa 60 --until 86400
//   coorm_sim --swf trace.swf --nodes 512
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_options.hpp"
#include "coorm/amr/static_analysis.hpp"
#include "coorm/amr/working_set.hpp"
#include "coorm/common/log.hpp"
#include "coorm/common/trace.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"
#include "coorm/workload/player.hpp"

using namespace coorm;

int main(int argc, char** argv) {
  const cli::ParseResult parsed = cli::parseArgs(argc, argv);
  if (parsed.status == cli::ParseStatus::kHelp) {
    cli::printUsage(std::cout);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << parsed.error << "\n\n";
    cli::printUsage(std::cerr);
    return 2;
  }
  const cli::Options& options = parsed.options;

  ScenarioConfig config;
  config.nodes = options.nodes;
  config.server = Server::Config::fromRuntime(options.runtime);
  config.server.slowPass = options.slowPassMs;
  if (options.slowPassMs > 0 && logLevel() > LogLevel::kWarn) {
    setLogLevel(LogLevel::kWarn);
  }
  if (!options.traceOut.empty()) trace::enable();
  config.recordTrace = options.showTrace;
  Scenario sc(config);
  Rng rng(options.seed);

  // Evolving AMR application.
  AmrApp* amr = nullptr;
  if (options.amrPeakGiB) {
    WorkingSetParams wsParams;
    wsParams.steps = options.amrSteps;
    const WorkingSetModel wsModel(wsParams);
    Rng child = rng.fork();
    const auto sizes =
        wsModel.generateSizesMiB(child, *options.amrPeakGiB * 1024.0);
    const SpeedupModel model;
    const StaticAnalysis analysis(model, sizes);
    const NodeCount neq = analysis.equivalentStatic(0.75).value_or(
        options.nodes / 2);

    AmrApp::Config amrCfg;
    amrCfg.cluster = sc.cluster();
    amrCfg.sizesMiB = sizes;
    amrCfg.preallocNodes = std::clamp<NodeCount>(
        static_cast<NodeCount>(options.overcommit *
                               static_cast<double>(neq)),
        1, options.nodes);
    amrCfg.walltime = hours(24 * 7);
    amrCfg.mode =
        options.amrStatic ? AmrApp::Mode::kStatic : AmrApp::Mode::kDynamic;
    amrCfg.announceInterval = options.announce;
    amr = &sc.addAmr(amrCfg, "amr");
    std::cout << "amr: peak " << *options.amrPeakGiB << " GiB, n_eq ~ "
              << neq << ", pre-allocation " << amrCfg.preallocNodes
              << " nodes\n";
  }

  // Malleable PSAs.
  std::vector<PsaApp*> psas;
  for (std::size_t i = 0; i < options.psaTasks.size(); ++i) {
    PsaApp::Config psaCfg;
    psaCfg.cluster = sc.cluster();
    psaCfg.taskDuration = options.psaTasks[i];
    psaCfg.rngSeed = options.seed * 100 + i;
    psas.push_back(&sc.addPsa(psaCfg, "psa" + std::to_string(i + 1)));
  }

  // Rigid workload: SWF trace or synthetic.
  std::unique_ptr<WorkloadPlayer> player;
  if (!options.swfPath.empty()) {
    std::ifstream in(options.swfPath);
    if (!in) {
      std::cerr << "cannot open " << options.swfPath << '\n';
      return 2;
    }
    std::string error;
    const auto workload = Workload::parseSwf(in, &error);
    if (!workload) {
      std::cerr << "SWF parse error: " << error << '\n';
      return 2;
    }
    std::cout << "trace: " << workload->size() << " jobs\n";
    player = std::make_unique<WorkloadPlayer>(sc.engine(), sc.server(),
                                              sc.cluster(), *workload);
  } else if (options.syntheticJobs > 0) {
    SyntheticWorkloadParams params;
    params.jobs = options.syntheticJobs;
    params.maxProcessors = std::max<NodeCount>(options.nodes / 2, 1);
    Rng child = rng.fork();
    const Workload workload = generateWorkload(params, child);
    std::cout << "synthetic workload: " << workload.size() << " jobs\n";
    player = std::make_unique<WorkloadPlayer>(sc.engine(), sc.server(),
                                              sc.cluster(), workload);
  }

  // Run.
  Time end;
  if (amr != nullptr) {
    end = sc.runUntilFinished(*amr, hours(24 * 30));
  } else {
    end = sc.runFor(options.until);
  }

  // Report.
  std::cout << "\n=== results (t = " << toSeconds(end) << " s) ===\n";
  TablePrinter table({"application", "allocated(node·s)", "notes"});
  if (amr != nullptr) {
    table.addRow({"amr",
                  TablePrinter::num(
                      sc.metrics().allocatedNodeSeconds(amr->appId()), 0),
                  (amr->finished() ? "finished, " : "running, ") +
                      std::to_string(amr->stepsCompleted()) + " steps"});
  }
  for (PsaApp* psa : psas) {
    table.addRow({psa->name(),
                  TablePrinter::num(
                      sc.metrics().allocatedNodeSeconds(psa->appId()), 0),
                  std::to_string(psa->tasksCompleted()) + " tasks, " +
                      std::to_string(psa->tasksKilled()) + " killed"});
  }
  table.print(std::cout);

  if (player != nullptr) {
    const WorkloadStats stats = player->stats(options.nodes);
    std::cout << "rigid jobs: " << stats.completed << '/' << stats.submitted
              << " completed, mean wait "
              << TablePrinter::num(stats.meanWaitSeconds, 0)
              << " s, mean bounded slowdown "
              << TablePrinter::num(stats.meanBoundedSlowdown, 2) << '\n';
  }

  double waste = 0.0;
  for (PsaApp* psa : psas) waste += psa->wasteNodeSeconds();
  const double capacity =
      static_cast<double>(options.nodes) * toSeconds(end);
  if (capacity > 0) {
    std::cout << "used resources: "
              << TablePrinter::num((sc.metrics().totalAllocatedNodeSeconds() -
                                    waste) /
                                       capacity * 100.0,
                                   1)
              << " % (waste " << TablePrinter::num(waste, 0) << " node·s)\n";
  }

  if (options.showTimeline) {
    std::cout << "\n=== allocation timeline ===\n";
    sc.timeline().render(std::cout, 0, end, options.nodes);
  }
  if (options.showTrace) {
    std::cout << "\n=== protocol trace ===\n";
    sc.trace().dump(std::cout);
  }
  if (!options.traceOut.empty()) {
    std::string error;
    if (!trace::writeChromeTrace(options.traceOut, &error)) {
      std::cerr << "coorm_sim: --trace-out: " << error << '\n';
      return 1;
    }
    std::cout << "trace written to " << options.traceOut << '\n';
  }
  return 0;
}

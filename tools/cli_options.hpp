// Command-line option parsing for coorm_sim.
//
// Kept separate from the driver so tests can exercise argument handling
// without spawning a process: parseArgs() never exits and never touches
// global state; it reports --help and errors through ParseResult instead.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "coorm/common/time.hpp"
#include "coorm/rms/machine.hpp"

namespace coorm::cli {

/// Everything coorm_sim can be told on the command line.
struct Options {
  NodeCount nodes = 128;
  std::uint64_t seed = 1;
  std::optional<double> amrPeakGiB;
  int amrSteps = 200;
  double overcommit = 1.0;
  Time announce = 0;
  bool amrStatic = false;
  std::vector<Time> psaTasks;
  int syntheticJobs = 0;
  std::string swfPath;
  bool strict = false;
  int threads = 1;
  /// Two-stage pipelined serving (snapshot passes on a background lane);
  /// --no-pipeline restores the serial back-to-back server. Results are
  /// bit-identical either way.
  bool pipeline = true;
  Time until = hours(24);
  bool showTimeline = false;
  bool showTrace = false;
};

enum class ParseStatus {
  kOk,    ///< options is valid, run the simulation
  kHelp,  ///< --help was given; print usage and exit 0
  kError  ///< bad input; `error` explains, print usage and exit non-zero
};

struct ParseResult {
  ParseStatus status = ParseStatus::kError;
  Options options;
  std::string error;

  [[nodiscard]] bool ok() const { return status == ParseStatus::kOk; }
};

/// Parses argv (argv[0] is skipped as the program name). Pure: no I/O.
[[nodiscard]] ParseResult parseArgs(int argc, const char* const* argv);

/// Writes the usage/option summary to `out`.
void printUsage(std::ostream& out);

}  // namespace coorm::cli

// Command-line option parsing shared by the coorm tools (coorm_sim,
// coorm_rmsd, coorm_loadgen).
//
// Kept separate from the drivers so tests can exercise argument handling
// without spawning a process: parseArgs() never exits and never touches
// global state; it reports --help and errors through ParseResult instead.
// One Options struct covers the union of the tools' flags; each driver
// reads the fields it cares about (and rejects what it must have, e.g.
// coorm_loadgen requires --connect).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "coorm/common/runtime_options.hpp"
#include "coorm/common/time.hpp"
#include "coorm/net/socket.hpp"
#include "coorm/rms/machine.hpp"

namespace coorm::cli {

/// Everything the coorm tools can be told on the command line.
struct Options {
  NodeCount nodes = 128;
  std::uint64_t seed = 1;
  std::optional<double> amrPeakGiB;
  int amrSteps = 200;
  double overcommit = 1.0;
  Time announce = 0;
  bool amrStatic = false;
  std::vector<Time> psaTasks;
  int syntheticJobs = 0;
  std::string swfPath;
  /// The shared runtime-tuning knobs (threads, pipeline, resched interval,
  /// strict equi-partitioning), parsed once here and projected into
  /// Server::Config / SchedulerOptions by the drivers. The old flag
  /// spellings (--strict, --threads, --no-pipeline, --resched) remain
  /// as aliases for the canonical forms.
  RuntimeOptions runtime;
  Time until = hours(24);
  bool showTimeline = false;
  bool showTrace = false;
  /// coorm_rmsd: address to bind ("addr:port", ":port" or bare port; port
  /// 0 picks an ephemeral port). Unset unless --listen was given.
  std::optional<net::Endpoint> listen;
  /// coorm_loadgen: daemon address to dial. Unset unless --connect was
  /// given.
  std::optional<net::Endpoint> connect;
  /// coorm_rmsd --stats: dial `connect`, send a STATS admin query, print
  /// the daemon's counters, and exit (instead of running a daemon).
  bool statsQuery = false;
  /// coorm_rmsd: write-ahead journal path. On startup the daemon replays
  /// it (rebuilding sessions/requests/allocations) before accepting
  /// connections; empty = no crash safety.
  std::string journalPath;
  /// coorm_rmsd: drop peers silent for this long (0 = never). Half the
  /// deadline triggers a PING first.
  Time idleDeadline = 0;
  /// coorm_rmsd: how long a vanished client's session stays resumable
  /// before the reaper disconnects it.
  Time resumeGrace = sec(30);
  /// coorm_rmsd: sequenced VIEWS_DELTA pushes (off = whole VIEWS frame
  /// per pass, the v2 behaviour — differential-test fodder).
  bool deltaViews = true;
  /// coorm_rmsd: per-session write coalescing (off = one send per frame).
  bool coalesce = true;
  /// coorm_loadgen: concurrent AppLink sessions to hold open (ramped up
  /// in batches so the daemon's accept loop is never the bottleneck).
  int connections = 1;
  /// coorm_loadgen: REQUEST round-trip latency probes to run once the
  /// ramp is complete (0 = skip the latency report).
  int probes = 0;
  /// All tools: dump pass-phase / I/O spans as Chrome trace-event JSON
  /// to this file on exit (chrome://tracing, Perfetto). Empty = tracing
  /// stays disabled (and costs one predicted branch per span site).
  std::string traceOut;
  /// coorm_sim / coorm_rmsd: log a one-line phase breakdown for every
  /// scheduling pass slower than this (0 = never).
  Time slowPassMs = 0;
  /// coorm_rmsd: serve Prometheus text exposition at
  /// http://ADDR:PORT/metrics on the daemon's event loop. Unset = no
  /// scrape endpoint.
  std::optional<net::Endpoint> metricsListen;
  /// coorm_rmsd --stats: print zero-valued counters and empty histograms
  /// too (default suppresses them).
  bool statsAll = false;
};

enum class ParseStatus {
  kOk,    ///< options is valid, run the simulation
  kHelp,  ///< --help was given; print usage and exit 0
  kError  ///< bad input; `error` explains, print usage and exit non-zero
};

struct ParseResult {
  ParseStatus status = ParseStatus::kError;
  Options options;
  std::string error;

  [[nodiscard]] bool ok() const { return status == ParseStatus::kOk; }
};

/// Parses argv (argv[0] is skipped as the program name). Pure: no I/O.
[[nodiscard]] ParseResult parseArgs(int argc, const char* const* argv);

/// Writes the usage/option summary to `out`.
void printUsage(std::ostream& out);

}  // namespace coorm::cli

// coorm_rmsd: the CooRMv2 RMS as a network daemon.
//
// Runs the exact same `Server` the simulator exercises — pipeline, worker
// threads and all — on a real-time poll loop, serving the wire protocol
// (net/wire.hpp) over TCP. Applications connect with net::RmsClient (or
// anything that speaks the frames); `coorm_loadgen` is the bundled load
// driver.
//
//   coorm_rmsd --listen 127.0.0.1:7788 --nodes 256 --resched 0.1
//
// Stops cleanly on SIGINT/SIGTERM (drops every connection, which the RMS
// observes as disconnects).
#include <csignal>
#include <iostream>
#include <memory>

#include "cli_options.hpp"
#include "coorm/common/metrics.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/daemon.hpp"
#include "coorm/net/io_executor.hpp"
#include "coorm/net/socket.hpp"
#include "coorm/rms/journal.hpp"
#include "coorm/rms/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace coorm;

  const cli::ParseResult parsed = cli::parseArgs(argc, argv);
  if (parsed.status == cli::ParseStatus::kHelp) {
    cli::printUsage(std::cout);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "coorm_rmsd: " << parsed.error << "\n";
    cli::printUsage(std::cerr);
    return 2;
  }
  const cli::Options& options = parsed.options;

  // Admin query mode: dial a running daemon, print its counters, exit.
  if (options.statsQuery) {
    if (!options.connect) {
      std::cerr << "coorm_rmsd: --stats needs --connect ADDR:PORT\n";
      return 2;
    }
    try {
      auto executor = net::makeIoExecutor(options.runtime.ioBackend);
      net::RmsClient client(
          *executor, net::RmsClient::Config{*options.connect, "statsq"});
      client.dial();
      const auto stats = client.stats();
      client.disconnect();
      if (!stats) {
        std::cerr << "coorm_rmsd: stats query to "
                  << net::toString(*options.connect) << " failed\n";
        return 1;
      }
      for (std::size_t i = 0; i < metrics::kEventCount; ++i) {
        std::cout << metrics::name(static_cast<metrics::Event>(i)) << " "
                  << stats->events[i] << "\n";
      }
      for (std::size_t i = 0; i < metrics::kGaugeCount; ++i) {
        std::cout << metrics::name(static_cast<metrics::Gauge>(i)) << " "
                  << stats->gauges[i] << "\n";
      }
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (!options.listen) {
    std::cerr << "coorm_rmsd: --listen ADDR:PORT is required\n";
    return 2;
  }

  const Server::Config config = Server::Config::fromRuntime(options.runtime);

  // C100k posture: lift RLIMIT_NOFILE to its hard cap before the listener
  // exists, so accept() never starts failing mid-ramp.
  net::raiseFdLimit();
  auto executorPtr = net::makeIoExecutor(options.runtime.ioBackend);
  net::IoExecutor& executor = *executorPtr;
  // Declared before the Server so the journal outlives every Server write.
  std::unique_ptr<rms::Journal> journal;
  Server server(executor, Machine::single(options.nodes), config);

  // Crash safety: replay the journal into the fresh server (refusing
  // corrupt-at-rest files), jump the loop clock to where the dead process
  // left off, then attach the journal for new writes. Clients hold session
  // tokens that survive the restart, so RESUME re-attaches them.
  if (!options.journalPath.empty()) {
    const rms::ScanResult scan = rms::Journal::scan(options.journalPath);
    if (scan.refused) {
      std::cerr << "coorm_rmsd: refusing journal " << options.journalPath
                << ": " << scan.diagnostic << "\n";
      return 1;
    }
    Time lastTime = kNever;
    std::string error;
    if (!server.restoreFromJournal(scan.records, &lastTime, &error)) {
      std::cerr << "coorm_rmsd: journal replay failed: " << error << "\n";
      return 1;
    }
    if (lastTime != kNever) executor.advanceTo(lastTime);
    journal =
        std::make_unique<rms::Journal>(options.journalPath, scan.validBytes);
    server.attachJournal(journal.get());
    std::cout << "coorm_rmsd: journal " << options.journalPath << ": "
              << scan.records.size() << " records replayed"
              << (scan.truncatedTail ? " (torn tail truncated)" : "")
              << std::endl;
  }

  try {
    net::Daemon::Config daemonConfig{*options.listen};
    daemonConfig.idleDeadline = options.idleDeadline;
    daemonConfig.resumeGrace = options.resumeGrace;
    daemonConfig.deltaViews = options.deltaViews;
    daemonConfig.coalesceWrites = options.coalesce;
    net::Daemon daemon(executor, server, daemonConfig);
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::cout << "coorm_rmsd: serving " << options.nodes << " nodes on "
              << options.listen->host << ":" << daemon.port() << " ("
              << net::toString(options.runtime.ioBackend) << " backend)"
              << std::endl;

    while (g_stop == 0) executor.runOne(msec(200));

    std::cout << "coorm_rmsd: shutting down (" << daemon.connectionCount()
              << " connections, " << daemon.framesIn() << " frames in, "
              << daemon.framesOut() << " out, " << server.passCount()
              << " passes)" << std::endl;
    daemon.close();
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  return 0;
}

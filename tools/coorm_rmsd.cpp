// coorm_rmsd: the CooRMv2 RMS as a network daemon.
//
// Runs the exact same `Server` the simulator exercises — pipeline, worker
// threads and all — on a real-time poll loop, serving the wire protocol
// (net/wire.hpp) over TCP. Applications connect with net::RmsClient (or
// anything that speaks the frames); `coorm_loadgen` is the bundled load
// driver.
//
//   coorm_rmsd --listen 127.0.0.1:7788 --nodes 256 --resched 0.1
//
// Stops cleanly on SIGINT/SIGTERM (drops every connection, which the RMS
// observes as disconnects).
#include <algorithm>
#include <csignal>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cli_options.hpp"
#include "coorm/common/log.hpp"
#include "coorm/common/metrics.hpp"
#include "coorm/common/trace.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/daemon.hpp"
#include "coorm/net/io_executor.hpp"
#include "coorm/net/metrics_http.hpp"
#include "coorm/net/socket.hpp"
#include "coorm/rms/journal.hpp"
#include "coorm/rms/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

/// Renders a stats snapshot as sorted `key value` lines. Zero-valued
/// counters and empty histograms are suppressed unless `all`; histograms
/// expand to _count/_sum/_p50/_p90/_p99/_p999 keys.
std::vector<std::pair<std::string, std::string>> statsLines(
    const coorm::metrics::Snapshot& stats, bool all) {
  using namespace coorm;
  std::vector<std::pair<std::string, std::string>> lines;
  for (std::size_t i = 0; i < metrics::kEventCount; ++i) {
    if (stats.events[i] == 0 && !all) continue;
    lines.emplace_back(metrics::name(static_cast<metrics::Event>(i)),
                       std::to_string(stats.events[i]));
  }
  for (std::size_t i = 0; i < metrics::kGaugeCount; ++i) {
    if (stats.gauges[i] == 0 && !all) continue;
    lines.emplace_back(metrics::name(static_cast<metrics::Gauge>(i)),
                       std::to_string(stats.gauges[i]));
  }
  for (std::size_t i = 0; i < metrics::kHistoCount; ++i) {
    const metrics::HistogramData& h = stats.histos[i];
    if (h.count == 0 && !all) continue;
    const std::string base{metrics::name(static_cast<metrics::Histo>(i))};
    lines.emplace_back(base + "_count", std::to_string(h.count));
    lines.emplace_back(base + "_sum", std::to_string(h.sum));
    lines.emplace_back(base + "_p50", std::to_string(h.quantile(0.50)));
    lines.emplace_back(base + "_p90", std::to_string(h.quantile(0.90)));
    lines.emplace_back(base + "_p99", std::to_string(h.quantile(0.99)));
    lines.emplace_back(base + "_p999", std::to_string(h.quantile(0.999)));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coorm;

  const cli::ParseResult parsed = cli::parseArgs(argc, argv);
  if (parsed.status == cli::ParseStatus::kHelp) {
    cli::printUsage(std::cout);
    return 0;
  }
  if (!parsed.ok()) {
    std::cerr << "coorm_rmsd: " << parsed.error << "\n";
    cli::printUsage(std::cerr);
    return 2;
  }
  const cli::Options& options = parsed.options;

  // Admin query mode: dial a running daemon, print its counters, exit.
  if (options.statsQuery) {
    if (!options.connect) {
      std::cerr << "coorm_rmsd: --stats needs --connect ADDR:PORT\n";
      return 2;
    }
    try {
      auto executor = net::makeIoExecutor(options.runtime.ioBackend);
      net::RmsClient client(
          *executor, net::RmsClient::Config{*options.connect, "statsq"});
      client.dial();
      const auto stats = client.stats();
      client.disconnect();
      if (!stats) {
        std::cerr << "coorm_rmsd: stats query to "
                  << net::toString(*options.connect) << " failed\n";
        return 1;
      }
      for (const auto& [key, text] : statsLines(*stats, options.statsAll)) {
        std::cout << key << " " << text << "\n";
      }
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
    return 0;
  }

  if (!options.listen) {
    std::cerr << "coorm_rmsd: --listen ADDR:PORT is required\n";
    return 2;
  }

  Server::Config config = Server::Config::fromRuntime(options.runtime);
  config.slowPass = options.slowPassMs;
  // The slow-pass breakdown logs at kWarn; make it visible even though
  // the default level is off.
  if (options.slowPassMs > 0 && logLevel() > LogLevel::kWarn) {
    setLogLevel(LogLevel::kWarn);
  }
  if (!options.traceOut.empty()) trace::enable();

  // C100k posture: lift RLIMIT_NOFILE to its hard cap before the listener
  // exists, so accept() never starts failing mid-ramp.
  net::raiseFdLimit();
  auto executorPtr = net::makeIoExecutor(options.runtime.ioBackend);
  net::IoExecutor& executor = *executorPtr;
  // Declared before the Server so the journal outlives every Server write.
  std::unique_ptr<rms::Journal> journal;
  Server server(executor, Machine::single(options.nodes), config);

  // Crash safety: replay the journal into the fresh server (refusing
  // corrupt-at-rest files), jump the loop clock to where the dead process
  // left off, then attach the journal for new writes. Clients hold session
  // tokens that survive the restart, so RESUME re-attaches them.
  if (!options.journalPath.empty()) {
    const rms::ScanResult scan = rms::Journal::scan(options.journalPath);
    if (scan.refused) {
      std::cerr << "coorm_rmsd: refusing journal " << options.journalPath
                << ": " << scan.diagnostic << "\n";
      return 1;
    }
    Time lastTime = kNever;
    std::string error;
    if (!server.restoreFromJournal(scan.records, &lastTime, &error)) {
      std::cerr << "coorm_rmsd: journal replay failed: " << error << "\n";
      return 1;
    }
    if (lastTime != kNever) executor.advanceTo(lastTime);
    journal =
        std::make_unique<rms::Journal>(options.journalPath, scan.validBytes);
    server.attachJournal(journal.get());
    std::cout << "coorm_rmsd: journal " << options.journalPath << ": "
              << scan.records.size() << " records replayed"
              << (scan.truncatedTail ? " (torn tail truncated)" : "")
              << std::endl;
  }

  try {
    net::Daemon::Config daemonConfig{*options.listen};
    daemonConfig.idleDeadline = options.idleDeadline;
    daemonConfig.resumeGrace = options.resumeGrace;
    daemonConfig.deltaViews = options.deltaViews;
    daemonConfig.coalesceWrites = options.coalesce;
    net::Daemon daemon(executor, server, daemonConfig);
    net::MetricsHttpServer metricsHttp(executor);
    if (options.metricsListen) {
      std::string error;
      if (!metricsHttp.start(*options.metricsListen, error)) {
        std::cerr << "coorm_rmsd: --metrics-listen: " << error << "\n";
        return 1;
      }
      std::cout << "coorm_rmsd: metrics at http://"
                << options.metricsListen->host << ":" << metricsHttp.port()
                << "/metrics" << std::endl;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::cout << "coorm_rmsd: serving " << options.nodes << " nodes on "
              << options.listen->host << ":" << daemon.port() << " ("
              << net::toString(options.runtime.ioBackend) << " backend)"
              << std::endl;

    while (g_stop == 0) executor.runOne(msec(200));

    std::cout << "coorm_rmsd: shutting down (" << daemon.connectionCount()
              << " connections, " << daemon.framesIn() << " frames in, "
              << daemon.framesOut() << " out, " << server.passCount()
              << " passes)" << std::endl;
    daemon.close();
    metricsHttp.stop();
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  if (!options.traceOut.empty()) {
    std::string error;
    if (!trace::writeChromeTrace(options.traceOut, &error)) {
      std::cerr << "coorm_rmsd: --trace-out: " << error << "\n";
      return 1;
    }
    std::cout << "coorm_rmsd: trace written to " << options.traceOut
              << std::endl;
  }
  return 0;
}

#!/usr/bin/env python3
"""Validate a --trace-out Chrome trace-event file.

CI's trace-smoke step runs a short simulation with tracing enabled and
feeds the result through this script, pinning the export contract:

    build/coorm_sim --jobs 8 --until 2 --trace-out pass.trace.json
    tools/check_trace.py pass.trace.json --expect pass --expect schedule

Checks (all fatal):
  - the file is valid JSON with a top-level "traceEvents" list;
  - every event is a complete ("ph": "X") duration event with a string
    name, integer pid/tid and non-negative ts/dur microseconds — the
    shape chrome://tracing and Perfetto load without warnings;
  - every --expect NAME appears at least once (repeatable);
  - unless --allow-empty, the trace holds at least one event.

Needs nothing outside the Python standard library.
"""

from __future__ import annotations

import argparse
import collections
import json
import numbers
import sys


def fail(message: str) -> None:
    raise SystemExit(f"check_trace: {message}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--expect", action="append", default=[], metavar="NAME",
        help="span name that must appear at least once; repeatable")
    parser.add_argument(
        "--allow-empty", action="store_true",
        help="accept a trace with zero events (still checks the skeleton)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except OSError as error:
        fail(f"cannot read {args.trace}: {error}")
    except json.JSONDecodeError as error:
        fail(f"{args.trace}: not valid JSON: {error}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{args.trace}: no top-level 'traceEvents' key")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail(f"{args.trace}: 'traceEvents' is not a list")
    if not events and not args.allow_empty:
        fail(f"{args.trace}: trace is empty (no spans recorded)")

    names: collections.Counter[str] = collections.Counter()
    for i, event in enumerate(events):
        where = f"{args.trace}: event {i}"
        if not isinstance(event, dict):
            fail(f"{where}: not an object")
        if event.get("ph") != "X":
            fail(f"{where}: ph is {event.get('ph')!r}, want complete 'X'")
        name = event.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing span name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                fail(f"{where}: {key} is {event.get(key)!r}, want an int")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, numbers.Real) or value < 0:
                fail(f"{where}: {key} is {value!r}, want a number >= 0")
        names[name] += 1

    missing = [name for name in args.expect if names[name] == 0]
    if missing:
        seen = ", ".join(sorted(names)) or "(none)"
        fail(f"{args.trace}: expected span(s) never recorded: "
             f"{', '.join(missing)}; saw: {seen}")

    total = sum(names.values())
    print(f"check_trace: {args.trace}: {total} events, "
          f"{len(names)} distinct spans ok")


if __name__ == "__main__":
    sys.exit(main())

// BM_LoopbackDaemon: end-to-end requests/s through a live coorm_rmsd-style
// daemon over loopback TCP — poll loop, framing, session multiplexing and
// the Server's scheduling passes included. One iteration is a full
// request() round trip (REQUEST frame, REQ_ACK back) followed by a done();
// the reported requests/s is the wire-facing counterpart of the
// in-process BM_ServerPipeline numbers (the paper's prototype served
// ~500 requests/s on 2009-era hardware, §5).
//
// Args: {apps}. Each app is its own TCP connection; requests rotate over
// the connections so the daemon multiplexes live sessions.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "coorm/common/check.hpp"
#include "coorm/common/metrics.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/daemon.hpp"
#include "coorm/net/poll_executor.hpp"
#include "coorm/rms/server.hpp"

namespace coorm::net {
namespace {

/// The daemon half, on its own thread (as in production).
class DaemonThread {
 public:
  DaemonThread() {
    thread_ = std::thread([this] {
      PollExecutor executor;
      Server::Config config;
      config.reschedInterval = msec(10);
      Server server(executor, Machine::single(4096), config);
      Daemon daemon(executor, server,
                    Daemon::Config{Endpoint{"127.0.0.1", 0}});
      port_.store(daemon.port());
      while (!stop_.load()) executor.runOne(msec(2));
      daemon.close();
    });
    while (port_.load() == 0) std::this_thread::yield();
  }
  ~DaemonThread() {
    stop_.store(true);
    thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const { return port_.load(); }

 private:
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> port_{0};
};

void BM_LoopbackDaemon(benchmark::State& state) {
  const int apps = static_cast<int>(state.range(0));

  DaemonThread daemon;
  PollExecutor loop;
  AppEndpoint sink;  // default no-op endpoint: the bench drives the links
  std::vector<std::unique_ptr<RmsClient>> clients;
  for (int i = 0; i < apps; ++i) {
    clients.push_back(std::make_unique<RmsClient>(
        loop, RmsClient::Config{Endpoint{"127.0.0.1", daemon.port()},
                                "bench" + std::to_string(i)}));
    clients.back()->connect(sink);
  }

  RequestSpec spec;
  spec.nodes = 1;
  spec.duration = hours(1);
  const metrics::Snapshot before = metrics::snapshot();
  std::size_t turn = 0;
  for (auto _ : state) {
    RmsClient& client = *clients[turn];
    turn = (turn + 1) % clients.size();
    const RequestId id = client.request(spec);  // blocking round trip
    COORM_CHECK(id.valid());
    client.done(id);
    loop.runOne(0);  // drain deliveries without blocking
  }
  state.counters["requests/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  // Every REQUEST round trip lands a daemon-side RTT histogram sample
  // (the /metrics percentile source); CI gates this stays nonzero.
  const metrics::Snapshot after = metrics::snapshot();
  state.counters["request_rtt_samples"] = static_cast<double>(
      after[metrics::Histo::kRequestRttUs].count -
      before[metrics::Histo::kRequestRttUs].count);

  for (auto& client : clients) client->disconnect();
}
BENCHMARK(BM_LoopbackDaemon)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace coorm::net

BENCHMARK_MAIN();

// Ablation: PSA victim-selection policy (DESIGN.md §6).
//
// When an evolving application's spontaneous update yanks nodes, the PSA
// chooses which tasks to kill. The paper does not specify the policy; we
// compare least-elapsed (default), most-elapsed and random on the Fig. 9
// setup at overcommit 1 and report the waste each policy produces.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

namespace {

double wasteFor(PsaApp::VictimPolicy policy, std::uint64_t seed,
                const EvalParams& eval) {
  const SpeedupModel model(paperSpeedupParams());
  Rng rng(seed);
  WorkingSetParams wsParams;
  wsParams.steps = eval.steps;
  const WorkingSetModel wsModel(wsParams);
  const std::vector<double> sizes =
      wsModel.generateSizesMiB(rng, eval.smaxMiB);
  const StaticAnalysis analysis(model, sizes);
  const NodeCount neq =
      analysis.equivalentStatic(eval.targetEfficiency).value_or(100);

  ScenarioConfig cfg;
  cfg.nodes = std::max<NodeCount>(coorm::bench::quick() ? 500 : 1400, neq);
  Scenario sc(cfg);

  AmrApp::Config amr;
  amr.cluster = sc.cluster();
  amr.model = model;
  amr.sizesMiB = sizes;
  amr.preallocNodes = neq;
  amr.walltime = secF(3.0 * analysis.staticDuration(neq) + 7200.0);
  AmrApp& nea = sc.addAmr(amr);

  PsaApp::Config psaCfg;
  psaCfg.cluster = sc.cluster();
  psaCfg.taskDuration = eval.psa1TaskDuration;
  psaCfg.victimPolicy = policy;
  psaCfg.rngSeed = seed;
  PsaApp& psa = sc.addPsa(psaCfg);

  sc.runUntilFinished(nea, satAdd(amr.walltime, amr.walltime));
  return psa.wasteNodeSeconds();
}

}  // namespace

int main() {
  std::cout << "=== Ablation: PSA victim-selection policy ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";
  const EvalParams eval = coorm::bench::evalParams();
  const int seeds = coorm::bench::seedCount();

  TablePrinter table({"policy", "median-waste(node·s)"});
  const std::pair<const char*, PsaApp::VictimPolicy> policies[] = {
      {"least-elapsed", PsaApp::VictimPolicy::kLeastElapsed},
      {"random", PsaApp::VictimPolicy::kRandom},
      {"most-elapsed", PsaApp::VictimPolicy::kMostElapsed},
  };
  for (const auto& [label, policy] : policies) {
    std::vector<double> waste;
    for (int s = 0; s < seeds; ++s) {
      waste.push_back(wasteFor(policy, 5000 + static_cast<std::uint64_t>(s),
                               eval));
    }
    table.addRow({label, TablePrinter::num(median(waste), 0)});
  }
  table.print(std::cout);
  std::cout << "\nKilling the youngest tasks wastes the least work; the "
               "paper's qualitative results do not depend on the choice.\n";
  return 0;
}

// Extension bench (paper §7 future work #1): what each charging policy
// makes the Fig. 9 users pay.
//
// Under "pre-allocated" billing (classic reservations) the dynamic AMR
// saves nothing and users have no reason to release resources — the
// paper's problem statement. Under "used-only" billing, pre-allocations
// are free and users would hoard them. The "blend" policy (used + a
// discounted rate on unused reservation) prices both honesty and dynamic
// release.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/accounting/accountant.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

namespace {

struct CostPair {
  double staticCost = 0.0;
  double dynamicCost = 0.0;
};

CostPair runPolicy(const AccountingRates& rates, std::uint64_t seed,
                   double overcommit, const EvalParams& eval) {
  CostPair result;
  for (const AmrApp::Mode mode :
       {AmrApp::Mode::kStatic, AmrApp::Mode::kDynamic}) {
    const SpeedupModel model(paperSpeedupParams());
    Rng rng(seed);
    WorkingSetParams wsParams;
    wsParams.steps = eval.steps;
    const WorkingSetModel wsModel(wsParams);
    const auto sizes = wsModel.generateSizesMiB(rng, eval.smaxMiB);
    const StaticAnalysis analysis(model, sizes);
    const NodeCount neq =
        analysis.equivalentStatic(eval.targetEfficiency).value_or(100);
    const NodeCount prealloc = std::max<NodeCount>(
        1, static_cast<NodeCount>(overcommit * static_cast<double>(neq)));

    ScenarioConfig cfg;
    cfg.nodes = std::max<NodeCount>(
        static_cast<NodeCount>(1400 * overcommit), prealloc);
    Scenario sc(cfg);
    Accountant accountant(rates);
    sc.server().addObserver(&accountant);

    AmrApp::Config amrCfg;
    amrCfg.cluster = sc.cluster();
    amrCfg.model = model;
    amrCfg.sizesMiB = sizes;
    amrCfg.preallocNodes = prealloc;
    amrCfg.walltime =
        secF(2.0 * analysis.staticDuration(prealloc) + 7200.0);
    amrCfg.mode = mode;
    AmrApp& amr = sc.addAmr(amrCfg);

    PsaApp::Config psaCfg;
    psaCfg.cluster = sc.cluster();
    psaCfg.taskDuration = eval.psa1TaskDuration;
    sc.addPsa(psaCfg);

    sc.runUntilFinished(amr, satAdd(amrCfg.walltime, amrCfg.walltime));
    accountant.finalize(sc.engine().now());
    const double cost = accountant.cost(amr.appId());
    if (mode == AmrApp::Mode::kStatic) {
      result.staticCost = cost;
    } else {
      result.dynamicCost = cost;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Extension: accounting policies (paper §7) ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";
  EvalParams eval = coorm::bench::evalParams();
  if (!coorm::bench::quick()) {
    eval.steps = 400;  // the policy comparison does not need 1000 steps
  }
  const double overcommit = 2.0;  // a cautious user over-reserves 2x

  TablePrinter table({"policy", "static-AMR-cost", "dynamic-AMR-cost",
                      "dynamic-saves(%)"});
  for (const ChargePolicy policy :
       {ChargePolicy::kPreAllocated, ChargePolicy::kUsedOnly,
        ChargePolicy::kBlend}) {
    AccountingRates rates;
    rates.policy = policy;
    const CostPair costs = runPolicy(rates, 6000, overcommit, eval);
    table.addRow(
        {toString(policy), TablePrinter::num(costs.staticCost, 0),
         TablePrinter::num(costs.dynamicCost, 0),
         TablePrinter::num(
             (1.0 - costs.dynamicCost / costs.staticCost) * 100.0, 1)});
  }
  table.print(std::cout);
  std::cout << "\nOnly the blend policy rewards dynamic release while still "
               "charging for the guarantee a pre-allocation provides.\n";
  return 0;
}

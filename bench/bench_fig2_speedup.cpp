// Figure 2: the AMR speed-up model t(n,S) = A·S/n + B·n + C·S + D fitted
// against measurements (§2.2).
//
// We print the model's step duration over the paper's grid (five mesh
// sizes, 1..16k nodes) and validate the fitting machinery: a weighted
// least-squares fit against noisy synthetic measurements must recover the
// constants within the paper's <15 % per-point error bound.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 2: speed-up model and fit ===\n";
  const Fig2Result result = runFig2(/*seed=*/42);

  TablePrinter table({"nodes", "12GiB", "48GiB", "196GiB", "784GiB",
                      "3136GiB"});
  for (NodeCount n = 1; n <= 16384; n *= 2) {
    std::vector<std::string> row{TablePrinter::integer(n)};
    for (const double sizeGiB : {12.0, 48.0, 196.0, 784.0, 3136.0}) {
      for (const Fig2Point& point : result.points) {
        if (point.nodes == n && point.sizeGiB == sizeGiB) {
          row.push_back(TablePrinter::num(point.durationSeconds, 2));
        }
      }
    }
    table.addRow(std::move(row));
  }
  std::cout << "Step duration t(n, S) in seconds:\n";
  table.print(std::cout);

  std::cout << "\nFit recovery from noisy synthetic measurements (10 % "
               "noise):\n";
  TablePrinter fit({"param", "paper", "recovered"});
  fit.addRow({"A (s·node/MiB)", "7.26e-3",
              TablePrinter::num(result.recovered.a * 1e3, 3) + "e-3"});
  fit.addRow({"B (s/node)", "1.23e-4",
              TablePrinter::num(result.recovered.b * 1e4, 3) + "e-4"});
  fit.addRow({"C (s/MiB)", "1.13e-6",
              TablePrinter::num(result.recovered.c * 1e6, 3) + "e-6"});
  fit.addRow({"D (s)", "1.38", TablePrinter::num(result.recovered.d, 3)});
  fit.print(std::cout);
  std::cout << "max relative error vs measurements: "
            << TablePrinter::num(result.fitMaxRelativeError * 100.0, 2)
            << " %  (paper bound: < 15 %)\n";
  return result.fitMaxRelativeError < 0.15 ? 0 : 1;
}

// BM_JournalAppend: steady-state journal append throughput — the cost the
// daemon pays per externally-visible transition inside a scheduling pass.
// The pass hot path never fsyncs except at the commit barrier, so the
// bench models exactly that: `commitEvery` buffered appends (bench arg),
// then one sync(). commitEvery=1 is the worst case (every record gates a
// client reply); 64 approximates a busy pass.
//
// BM_JournalReplay: scan() cost of a cold restart at 1k–64k records —
// the time-to-first-connection a crashed daemon adds, reported alongside
// records/s so the trajectory catches a recovery-path regression.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coorm/common/check.hpp"
#include "coorm/rms/journal.hpp"

namespace coorm::rms {
namespace {

std::string tempJournalPath() {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/coorm_bench_journal.bin";
}

/// A plausible record: type byte + ~40 bytes of payload (a kStarted with a
/// handful of node ids is this size).
std::vector<std::uint8_t> sampleRecord() {
  std::vector<std::uint8_t> payload(41, 0);
  payload[0] = static_cast<std::uint8_t>(RecordType::kStarted);
  for (std::size_t i = 1; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37);
  }
  return payload;
}

void BM_JournalAppend(benchmark::State& state) {
  const int commitEvery = static_cast<int>(state.range(0));
  const std::string path = tempJournalPath();
  std::remove(path.c_str());
  const std::vector<std::uint8_t> record = sampleRecord();

  Journal journal(path, 0);
  int sinceCommit = 0;
  for (auto _ : state) {
    journal.append(record);
    if (++sinceCommit >= commitEvery) {
      journal.sync();
      sinceCommit = 0;
    }
    // Keep the file from growing without bound across iterations; the
    // compaction is outside the timed per-record cost in spirit, but
    // rare enough (every 1<<16 appends) not to move the number.
    if (journal.bytes() > (8u << 20)) {
      state.PauseTiming();
      journal.compact(record);
      state.ResumeTiming();
    }
  }
  journal.sync();

  state.SetItemsProcessed(state.iterations());
  state.counters["fsyncs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / commitEvery,
      benchmark::Counter::kIsRate);
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalAppend)->Arg(1)->Arg(16)->Arg(64);

void BM_JournalReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string path = tempJournalPath();
  std::remove(path.c_str());
  const std::vector<std::uint8_t> record = sampleRecord();
  {
    Journal journal(path, 0);
    for (int i = 0; i < records; ++i) journal.append(record);
    journal.sync();
  }

  for (auto _ : state) {
    const ScanResult scan = Journal::scan(path);
    COORM_CHECK(!scan.refused);
    COORM_CHECK(scan.records.size() == static_cast<std::size_t>(records));
    benchmark::DoNotOptimize(scan);
  }

  state.SetItemsProcessed(state.iterations() * records);
  std::remove(path.c_str());
}
BENCHMARK(BM_JournalReplay)->Arg(1024)->Arg(16384)->Arg(65536);

}  // namespace
}  // namespace coorm::rms

BENCHMARK_MAIN();

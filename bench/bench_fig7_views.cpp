// Figure 7: example of non-preemptive and preemptive views of one cluster
// (§3.1.4).
//
// We reproduce a comparable situation: some non-preemptible load now, a
// pre-allocation marking future peak usage, and a queued job — then print
// an application's two views as step functions over time, like the paper's
// staircase plot.
#include <iostream>

#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 7: example views for one cluster ===\n";
  const ClusterId kC{0};

  ScenarioConfig cfg;
  cfg.nodes = 14;
  Scenario sc(cfg);

  // An evolving application pre-allocates 8 nodes for 2 h but currently
  // only computes on ~3 of them (a 1.5 GiB working set at 75 % target
  // efficiency).
  AmrApp::Config amr;
  amr.cluster = kC;
  amr.sizesMiB = std::vector<double>(400, 1500.0);
  amr.preallocNodes = 8;
  amr.walltime = hours(2);
  sc.addAmr(amr);

  // A rigid job takes 4 more nodes for 40 minutes.
  sc.addRigid({kC, 4, minutes(40)});

  sc.runFor(minutes(2));

  // The observer: a freshly connected application inspecting its views.
  PsaApp::Config psaCfg;
  psaCfg.cluster = kC;
  psaCfg.taskDuration = minutes(5);
  psaCfg.maxNodes = 1;  // mostly idle: we only want its views
  PsaApp& observer = sc.addPsa(psaCfg, "observer");
  sc.runFor(sec(5));

  const View np = observer.lastNonPreemptiveView();
  const View p = observer.lastPreemptiveView();

  std::cout << "\nnon-preemptive view: " << np.cap(kC).toString() << '\n';
  std::cout << "preemptive view:     " << p.cap(kC).toString() << '\n';

  TablePrinter table({"time(min)", "non-preemptive", "preemptive"});
  for (Time t = sc.engine().now(); t <= hours(3); t += minutes(10)) {
    table.addRow({TablePrinter::num(toSeconds(t) / 60.0, 0),
                  TablePrinter::integer(np.at(kC, t)),
                  TablePrinter::integer(p.at(kC, t))});
  }
  table.print(std::cout);

  std::cout << "\nPaper check (Fig. 7 structure): the non-preemptive view "
               "excludes pre-allocated and non-preemptibly held nodes; the "
               "preemptive view only excludes actual non-preemptible "
               "allocations, so pre-allocated-but-unused capacity is "
               "offered preemptibly and capacity returns as requests "
               "end.\n";
  return 0;
}

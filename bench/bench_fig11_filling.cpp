// Figure 11: efficient resource filling with two PSAs (§5.4).
//
// A second PSA with short tasks (dtask = 60 s) joins: with
// equi-partitioning *with filling* (CooRMv2), it can use the resources the
// 600 s-task PSA cannot (holes shorter than its task length). The "strict"
// equi-partitioning baseline shows both PSAs only their fixed halves, so
// the short holes go unused.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 11: two PSAs, filling vs strict ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";

  const std::vector<Time> announces =
      coorm::bench::quick()
          ? std::vector<Time>{0, sec(300), sec(600)}
          : std::vector<Time>{0, sec(100), sec(200), sec(300), sec(400),
                              sec(500), sec(600), sec(700)};

  const auto points =
      runFig11(announces, coorm::bench::seedCount(), /*baseSeed=*/3000,
               coorm::bench::evalParams());

  TablePrinter table({"announce(s)", "used-filling(%)", "used-strict(%)",
                      "gain(pp)"});
  double meanGain = 0.0;
  for (const auto& point : points) {
    const double gain = point.usedFillingPct - point.usedStrictPct;
    meanGain += gain / static_cast<double>(points.size());
    table.addRow({TablePrinter::num(toSeconds(point.announceInterval), 0),
                  TablePrinter::num(point.usedFillingPct, 2),
                  TablePrinter::num(point.usedStrictPct, 2),
                  TablePrinter::num(gain, 2)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: filling uses more of the machine than strict "
               "equi-partitioning (mean gain here: "
            << TablePrinter::num(meanGain, 2) << " pp).\n";
  return 0;
}

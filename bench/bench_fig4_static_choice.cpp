// Figure 4: static allocation choices for a target efficiency of 75 %
// (§2.3).
//
// For each relative data size (1/8 .. 8 x the paper's Smax), the feasible
// band of static node-counts: at least enough nodes that the peak working
// set fits in memory, at most as many as keep the consumed area within
// 10 % of A(75 %). The paper's point: picking inside this band without
// knowing the evolution in advance is hard.
//
// Node memory capacity is not stated in the paper; we model 16 GiB per
// node (documented in DESIGN.md) which keeps the whole swept range
// feasible, as in the paper's plot.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 4: static allocation choices (e_t = 75 %) ===\n";
  const int profiles = coorm::bench::quick() ? 5 : 15;
  const auto points = runFig4(profiles, /*seed=*/13);

  TablePrinter table({"rel-size", "min-nodes(memory)", "max-nodes(area)",
                      "band-width"});
  for (const auto& point : points) {
    table.addRow({TablePrinter::num(point.relativeSize, 3),
                  TablePrinter::integer(point.minNodes),
                  TablePrinter::integer(point.maxNodes),
                  TablePrinter::integer(point.maxNodes - point.minNodes)});
  }
  table.print(std::cout);
  std::cout << "\nPaper check: the feasible band shifts right and narrows "
               "relative to its position as the data grows — a user cannot "
               "pick a safe static allocation without knowing the "
               "evolution.\n";
  return 0;
}

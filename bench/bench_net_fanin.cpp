// BM_DaemonFanIn: per-pass view fan-out cost through a live daemon on the
// c100k serving path — epoll backend, per-session write coalescing, and
// VIEWS_DELTA pushes toggled as a benchmark dimension.
//
// Args: {subscribers, delta}. A driver app holds 64 long-horizon
// background allocations (staggered 10 h expiries — every pushed view
// carries a realistic many-segment availability profile) plus one
// short-horizon churn slot it turns over once per iteration; each turn
// commits a pass whose views the daemon fans out to every subscriber
// session. The churn's diff window ([now, now+1h)) excludes the 10 h
// background breakpoints — the delta encoder's steady-state case: long
// jobs dominate the profile, per-pass change is local. One iteration
// completes when the slowest subscriber has applied the push — so
// real_time is the commit-to-applied fan-out latency, and
// wire_bytes_per_pass (measured across the whole process) is what the
// delta encoding is claimed to shrink: compare the delta=1 rows against
// their delta=0 twins in BENCH_scheduler.json.
//
// CI gates on views_delta_sent / frames_coalesced via tools/bench_report.py
//   --check-only --require-nonzero views_delta_sent
//   --require-nonzero frames_coalesced
// so the delta path and the coalescer can never silently disengage.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "coorm/common/check.hpp"
#include "coorm/common/metrics.hpp"
#include "coorm/net/client.hpp"
#include "coorm/net/daemon.hpp"
#include "coorm/net/io_executor.hpp"
#include "coorm/net/socket.hpp"
#include "coorm/rms/server.hpp"

namespace coorm::net {
namespace {

/// The daemon half on its own thread, epoll backend (as in production).
class DaemonThread {
 public:
  explicit DaemonThread(bool deltaViews) {
    thread_ = std::thread([this, deltaViews] {
      auto executor = makeIoExecutor(IoBackend::kEpoll);
      Server::Config config;
      config.reschedInterval = msec(10);
      Server server(*executor, Machine::single(4096), config);
      Daemon::Config daemonConfig{Endpoint{"127.0.0.1", 0}};
      daemonConfig.deltaViews = deltaViews;
      Daemon daemon(*executor, server, daemonConfig);
      port_.store(daemon.port());
      while (!stop_.load()) executor->runOne(msec(2));
      daemon.close();
    });
    while (port_.load() == 0) std::this_thread::yield();
  }
  ~DaemonThread() {
    stop_.store(true);
    thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const { return port_.load(); }

 private:
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint16_t> port_{0};
};

struct Subscriber final : AppEndpoint {
  void onViews(const View&, const View&) override { ++views; }
  long views = 0;
};

void BM_DaemonFanIn(benchmark::State& state) {
  const int subscribers = static_cast<int>(state.range(0));
  const bool deltaViews = state.range(1) != 0;
  raiseFdLimit();

  DaemonThread daemon(deltaViews);
  auto loop = makeIoExecutor(IoBackend::kEpoll);
  std::vector<std::unique_ptr<Subscriber>> endpoints;
  std::vector<std::unique_ptr<RmsClient>> clients;
  for (int i = 0; i < subscribers; ++i) {
    endpoints.push_back(std::make_unique<Subscriber>());
    clients.push_back(std::make_unique<RmsClient>(
        *loop, RmsClient::Config{Endpoint{"127.0.0.1", daemon.port()},
                                 "sub" + std::to_string(i)}));
    clients.back()->connect(*endpoints.back());
  }

  AppEndpoint sink;
  RmsClient driver(
      *loop, RmsClient::Config{Endpoint{"127.0.0.1", daemon.port()}, "drv"});
  driver.connect(sink);
  // 64 long-horizon background allocations: their staggered 10 h expiries
  // give every pushed view a many-segment availability profile that the
  // per-iteration churn never touches (so delta pushes stay local).
  RequestSpec background;
  background.nodes = 1;
  background.duration = hours(10);
  for (int i = 0; i < 64; ++i) {
    background.duration = background.duration + msec(i);
    COORM_CHECK(driver.request(background).valid());
  }
  // The churn slot: a short-horizon allocation turned over each iteration.
  // Its diff window ends at its 1 h expiry — before every background
  // breakpoint — so delta mode ships a handful of segments per push where
  // full mode re-ships the whole profile.
  RequestSpec spec;
  spec.nodes = 1;
  spec.duration = hours(1);
  RequestId churn = driver.request(spec);
  COORM_CHECK(churn.valid());

  const auto slowest = [&] {
    long least = endpoints[0]->views;
    for (const auto& endpoint : endpoints) {
      if (endpoint->views < least) least = endpoint->views;
    }
    return least;
  };
  const auto pumpUntil = [&](long target) {
    while (slowest() < target) loop->runOne(msec(1));
  };
  pumpUntil(1);  // every session is attached and synced

  const metrics::Snapshot before = metrics::snapshot();
  long target = slowest();
  for (auto _ : state) {
    // Turn the churn slot over: one new short grant, one release — the
    // pass that commits them changes every subscriber's view only within
    // the 1 h churn horizon; the 64-segment background tail is untouched.
    const RequestId id = driver.request(spec);
    COORM_CHECK(id.valid());
    driver.done(churn);
    churn = id;
    ++target;
    pumpUntil(target);
  }
  const metrics::Snapshot after = metrics::snapshot();

  const auto delta = [&](metrics::Event event) {
    return static_cast<double>(after[event] - before[event]);
  };
  const double iterations = static_cast<double>(state.iterations());
  state.counters["wire_bytes_per_pass"] =
      benchmark::Counter(delta(metrics::Event::kWireBytesOut) / iterations);
  state.counters["frames_coalesced"] =
      benchmark::Counter(delta(metrics::Event::kFramesCoalesced));
  state.counters["epoll_wakeups"] =
      benchmark::Counter(delta(metrics::Event::kEpollWakeups));
  if (deltaViews) {
    state.counters["views_delta_sent"] =
        benchmark::Counter(delta(metrics::Event::kViewsDeltaSent));
    state.counters["views_delta_bytes_saved"] =
        benchmark::Counter(delta(metrics::Event::kViewsDeltaBytesSaved));
    COORM_CHECK(after[metrics::Event::kViewsResync] ==
                before[metrics::Event::kViewsResync]);
  }

  for (auto& client : clients) client->disconnect();
  driver.disconnect();
}
BENCHMARK(BM_DaemonFanIn)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace coorm::net

BENCHMARK_MAIN();

// Figure 10: scheduling with announced updates (§5.3).
//
// Overcommit fixed at 1; the AMR announces its updates `announce interval`
// seconds ahead and keeps computing on its current allocation meanwhile.
// Reported vs the announce interval, as medians over seeds:
//   - AMR end-time increase relative to the spontaneous run (grows),
//   - PSA waste as % of its allocation (drops to 0 once the interval
//     reaches dtask = 600 s),
//   - used resources % (roughly flat, with resonances near dtask
//     divisors).
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 10: announced updates (overcommit = 1) ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";

  const std::vector<Time> announces = coorm::bench::quick()
                                          ? std::vector<Time>{0, sec(150),
                                                              sec(300),
                                                              sec(550),
                                                              sec(600),
                                                              sec(700)}
                                          : std::vector<Time>{0, sec(100),
                                                              sec(200),
                                                              sec(300),
                                                              sec(400),
                                                              sec(500),
                                                              sec(550),
                                                              sec(600),
                                                              sec(650),
                                                              sec(700)};

  const auto points =
      runFig10(announces, coorm::bench::seedCount(), /*baseSeed=*/2000,
               coorm::bench::evalParams());

  TablePrinter table({"announce(s)", "AMR-end-time-incr(%)", "PSA-waste(%)",
                      "used-resources(%)"});
  for (const auto& point : points) {
    table.addRow({TablePrinter::num(toSeconds(point.announceInterval), 0),
                  TablePrinter::num(point.endTimeIncreasePct, 2),
                  TablePrinter::num(point.psaWastePct, 2),
                  TablePrinter::num(point.usedResourcesPct, 2)});
  }
  table.print(std::cout);

  std::cout << "\nPaper checks: end-time increase grows with the announce "
               "interval; PSA waste decreases and reaches 0 once the "
               "interval >= dtask (600 s); used resources stay high "
               "throughout.\n";
  return 0;
}

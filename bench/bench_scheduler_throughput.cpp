// Scheduler throughput (§3.2).
//
// The paper's Python+C++ prototype handled ~500 requests/second on one
// core of a 2009-era CPU, with linear complexity in the number of
// requests. We measure the pure C++ scheduler (Algorithm 4) over synthetic
// request populations of varying size, reporting requests/second and
// verifying the roughly-linear scaling.
//
// Scenario families:
//  - BM_SchedulePass: the historical mix (pre-allocation + NP chain +
//    one preemptible per application) on a single 4096-node cluster;
//  - BM_ScheduleLargeScale: 256–4096 applications, capacity scaled with
//    the population so the machine stays contended but not degenerate;
//  - BM_ScheduleDeepChains: long alternating NEXT/COALLOC constraint
//    chains, stressing fit()'s constraint propagation;
//  - BM_ScheduleMultiCluster: applications spread over 8 clusters;
//  - BM_EqSchedule: Algorithm 3 in isolation (half the applications hold
//    started preemptible allocations, half have pending ones);
//  - BM_ServerPipeline: the full Server + Engine stack under a
//    message-heavy multi-app protocol load, comparing the serial
//    back-to-back server against the snapshot/commit pipeline
//    (args {apps, threads, pipeline}).
//
// `tools/bench_report.py` turns `--benchmark_format=json` output from this
// binary into the committed BENCH_scheduler.json trajectory.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <memory>

#include "coorm/common/metrics.hpp"
#include "coorm/common/rng.hpp"
#include "coorm/common/worker_pool.hpp"
#include "coorm/rms/scheduler.hpp"
#include "coorm/rms/server.hpp"
#include "coorm/sim/engine.hpp"

namespace coorm {
namespace {

struct PopulationParams {
  int napps = 4;
  int chain = 2;            ///< NP requests chained after the first one
  int nclusters = 1;
  NodeCount nodesPerCluster = 4096;
  bool mixCoAlloc = false;  ///< alternate NEXT/COALLOC along the chain
  bool startedPreemptibles = false;  ///< every other app holds nodes already
  int threads = 1;          ///< SchedulerOptions::threads
  std::uint64_t seed = 99;
};

struct Population {
  Machine machine;
  std::vector<std::unique_ptr<Request>> owned;
  std::vector<std::unique_ptr<RequestSet>> sets;
  std::vector<AppSchedule> apps;
  std::size_t requestCount = 0;

  // A mix mirroring the evaluation: each application has a pre-allocation,
  // a couple of chained NP requests inside it, and a preemptible request.
  explicit Population(const PopulationParams& params) {
    Rng rng(params.seed);
    std::int64_t nextId = 0;
    for (int c = 0; c < params.nclusters; ++c) {
      machine.clusters.push_back({ClusterId{c}, params.nodesPerCluster});
    }
    apps.reserve(static_cast<std::size_t>(params.napps));
    for (int a = 0; a < params.napps; ++a) {
      const ClusterId cid{a % params.nclusters};
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* pa = sets.back().get();
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* np = sets.back().get();
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* p = sets.back().get();

      auto add = [&](RequestSet* set, NodeCount nodes, Time duration,
                     RequestType type, Relation how,
                     Request* parent) -> Request* {
        auto r = std::make_unique<Request>();
        r->id = RequestId{nextId++};
        r->cluster = cid;
        r->nodes = nodes;
        r->duration = duration;
        r->type = type;
        r->relatedHow = how;
        r->relatedTo = parent;
        set->add(r.get());
        owned.push_back(std::move(r));
        ++requestCount;
        return owned.back().get();
      };

      Request* prealloc = add(pa, rng.uniformInt(4, 64),
                              sec(rng.uniformInt(600, 7200)),
                              RequestType::kPreAllocation, Relation::kFree,
                              nullptr);
      Request* inner =
          add(np, rng.uniformInt(1, prealloc->nodes),
              sec(rng.uniformInt(300, 3600)), RequestType::kNonPreemptible,
              Relation::kCoAlloc, prealloc);
      for (int k = 0; k < params.chain; ++k) {
        const Relation how = (params.mixCoAlloc && k % 2 == 1)
                                 ? Relation::kCoAlloc
                                 : Relation::kNext;
        inner = add(np, rng.uniformInt(1, prealloc->nodes),
                    sec(rng.uniformInt(300, 3600)),
                    RequestType::kNonPreemptible, how, inner);
      }
      Request* preemptible =
          add(p, rng.uniformInt(1, 32), kTimeInf, RequestType::kPreemptible,
              Relation::kFree, nullptr);
      if (params.startedPreemptibles && a % 2 == 0) {
        preemptible->startedAt = 0;
        for (NodeCount n = 0; n < preemptible->nodes; ++n) {
          preemptible->nodeIds.push_back(
              NodeId{cid, static_cast<std::int32_t>(a * 64 + n)});
        }
      }

      AppSchedule app;
      app.app = AppId{a};
      app.preAllocations = pa;
      app.nonPreemptible = np;
      app.preemptible = p;
      apps.push_back(std::move(app));
    }
  }
};

void runSchedulePass(benchmark::State& state, const PopulationParams& params) {
  Population population(params);
  Scheduler scheduler(population.machine, Scheduler::Config{},
                      SchedulerOptions{params.threads});
  Time now = 0;
  for (auto _ : state) {
    scheduler.schedule(population.apps, now);
    now += sec(1);
    benchmark::DoNotOptimize(population.apps.front().preemptiveView);
  }
  state.counters["requests"] =
      static_cast<double>(population.requestCount);
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(population.requestCount),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SchedulePass(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = static_cast<int>(state.range(1));
  runSchedulePass(state, params);
}

BENCHMARK(BM_SchedulePass)
    ->Args({4, 2})
    ->Args({16, 2})
    ->Args({64, 2})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({128, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_ScheduleLargeScale(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 8;
  params.nodesPerCluster = 16 * params.napps;  // contended but not degenerate
  params.startedPreemptibles = true;
  runSchedulePass(state, params);
}

BENCHMARK(BM_ScheduleLargeScale)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleDeepChains(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = static_cast<int>(state.range(1));
  params.mixCoAlloc = true;
  params.nodesPerCluster = 8192;
  runSchedulePass(state, params);
}

BENCHMARK(BM_ScheduleDeepChains)
    ->Args({64, 32})
    ->Args({256, 32})
    ->Args({256, 64})
    ->Unit(benchmark::kMillisecond);

// Args: {napps, threads}. threads > 1 exercises the worker-pool fan-out
// (per-application occupation steps, per-cluster Step 2 sweeps); the
// schedules are bit-identical across thread counts, so the ratio between
// the /1 and /N variants is pure scheduling throughput.
void BM_ScheduleMultiCluster(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 4;
  params.nclusters = 8;
  params.nodesPerCluster = 4 * params.napps;
  params.startedPreemptibles = true;
  params.threads = static_cast<int>(state.range(1));
  runSchedulePass(state, params);
}

BENCHMARK(BM_ScheduleMultiCluster)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({1024, 1})
    ->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

// Args: {napps, threads}. Algorithm 3 in isolation on a single cluster;
// threads > 1 fans Steps 1/3 out per application.
void BM_EqSchedule(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 0;
  params.nodesPerCluster = 8 * params.napps;
  params.startedPreemptibles = true;
  Population population(params);
  Scheduler scheduler(population.machine);
  const View vp = scheduler.machineView();
  const int threads = static_cast<int>(state.range(1));
  std::unique_ptr<WorkerPool> pool;
  if (threads > 1) pool = std::make_unique<WorkerPool>(threads);
  for (auto _ : state) {
    Scheduler::eqSchedule(population.apps, vp, 0, /*strict=*/false,
                          ProfileContext{.pool = pool.get()});
    benchmark::DoNotOptimize(population.apps.front().preemptiveView);
  }
}

BENCHMARK(BM_EqSchedule)
    ->Args({64, 1})
    ->Args({256, 1})
    ->Args({1024, 1})
    ->Args({4096, 1})
    ->Args({1024, 4})
    ->Args({4096, 4})
    ->Unit(benchmark::kMillisecond);

/// A scripted application for the server benchmark: submits bursts of
/// non-preemptible and preemptible requests on a half-second grid (so
/// messages regularly dispatch while the per-second scheduling pass is in
/// flight), answers expiries, and retires older requests.
class PipelineBenchApp : public AppEndpoint {
 public:
  PipelineBenchApp(Engine& engine, std::uint64_t seed)
      : engine_(engine), rng_(seed) {}

  void attach(Server& server) {
    session_ = server.connect(*this);
    scheduleAction();
  }

  void onExpired(RequestId id) override {
    ++messages_;
    session_->done(id);
  }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  void scheduleAction() {
    engine_.after(msec(500) * rng_.uniformInt(1, 4), [this] {
      const int burst = static_cast<int>(rng_.uniformInt(1, 3));
      for (int i = 0; i < burst; ++i) {
        RequestSpec spec;
        spec.cluster = ClusterId{0};
        spec.nodes = rng_.uniformInt(1, 8);
        if (rng_.uniformInt(0, 2) == 0) {
          spec.type = RequestType::kPreemptible;
          spec.duration = sec(rng_.uniformInt(5, 40));
        } else {
          spec.type = RequestType::kNonPreemptible;
          spec.duration = sec(rng_.uniformInt(5, 30));
        }
        pending_.push_back(session_->request(spec));
        ++messages_;
      }
      if (pending_.size() > 6) {
        session_->done(pending_.front());
        pending_.erase(pending_.begin());
        ++messages_;
      }
      scheduleAction();
    });
  }

  Engine& engine_;
  Rng rng_;
  Session* session_ = nullptr;
  std::vector<RequestId> pending_;
  std::uint64_t messages_ = 0;
};

// Args: {apps, threads, pipeline}. One iteration simulates two minutes of
// message-heavy protocol traffic through the whole Engine + Server stack;
// pipeline=1 runs every pass on the background lane against a request-set
// snapshot (overlapping protocol handling), pipeline=0 is the serial
// back-to-back reference. Outputs are bit-identical; the difference is
// pure serving latency. `passes`/`overlapped` record how many passes ran
// and how many had messages arrive in flight.
void BM_ServerPipeline(benchmark::State& state) {
  const int napps = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const bool pipeline = state.range(2) != 0;
  const metrics::Snapshot before = metrics::snapshot();
  std::uint64_t messages = 0;
  std::uint64_t passes = 0;
  std::uint64_t overlapped = 0;
  for (auto _ : state) {
    Engine engine;
    Server::Config config;
    config.reschedInterval = sec(1);
    config.pipeline = pipeline;
    config.threads = threads;
    Server server(engine, Machine::single(8 * napps), config);
    std::vector<std::unique_ptr<PipelineBenchApp>> apps;
    Rng rng(42);
    for (int i = 0; i < napps; ++i) {
      apps.push_back(std::make_unique<PipelineBenchApp>(
          engine, rng.fork().engine()()));
      apps.back()->attach(server);
    }
    // Explicit drive loop (equivalent to runUntil for the measured work):
    // nextEventAt() bounds the horizon check without popping, the shape a
    // driver interleaving external input with dispatch uses.
    const Time horizon = minutes(2);
    while (engine.nextEventAt() <= horizon) engine.step();
    for (const auto& app : apps) messages += app->messages();
    passes += server.passCount();
    overlapped += server.overlappedPassCount();
  }
  state.counters["messages/s"] = benchmark::Counter(
      static_cast<double>(messages), benchmark::Counter::kIsRate);
  state.counters["passes"] = static_cast<double>(passes);
  state.counters["overlapped"] = static_cast<double>(overlapped);
  // Write-back fast path (snapshot.cpp): passes whose results all match
  // their capture-time seeds skip the scattered live-request walk. The
  // clean share pins that the fast path actually engages under protocol
  // load (counters are process-global, hence the delta).
  const auto delta = metrics::snapshot();
  state.counters["writeback_clean"] = static_cast<double>(
      delta[metrics::Event::kWriteBackAppsClean] -
      before[metrics::Event::kWriteBackAppsClean]);
  state.counters["writeback_dirty"] = static_cast<double>(
      delta[metrics::Event::kWriteBackAppsDirty] -
      before[metrics::Event::kWriteBackAppsDirty]);
  // Every pass through the stack must land in the pass-latency histogram
  // (the percentile source for --stats and /metrics); CI gates this stays
  // nonzero so the observability layer cannot silently detach.
  state.counters["pass_latency_samples"] = static_cast<double>(
      delta[metrics::Histo::kPassLatencyUs].count -
      before[metrics::Histo::kPassLatencyUs].count);
}

BENCHMARK(BM_ServerPipeline)
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({16, 2, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 2, 1})
    ->Unit(benchmark::kMillisecond);

// Args: {napps, churnPct, incremental}. Steady-state lease population:
// every application holds one started preemptible lease on one of 16
// congested 64-node clusters (sum of wants far above capacity, so the
// Step 2 equipartition works every breakpoint), with finite staggered
// durations spreading ~napps/16 breakpoints per cluster. Each iteration
// churns `churnPct`% of the applications (a small lease extension — a
// local breakpoint move — plus the epoch bump the server does) and runs
// one recapture + schedulePass + writeBack round at a fixed `now`.
//
// incremental=0 is the full-recompute reference; the /1 variant divided
// into it is the O(changed) pass-latency claim (ISSUE 8 gates on >= 5x at
// 10000 apps / 1% churn). The pass_apps_clean / step2_ranges_reused
// counters (process-global deltas over the measured loop) pin that the
// steady state really is served from the cache — CI fails the bench job
// if either stays at zero.
void BM_ScheduleIncremental(benchmark::State& state) {
  const int napps = static_cast<int>(state.range(0));
  const int churnPct = static_cast<int>(state.range(1));
  const bool incremental = state.range(2) != 0;
  constexpr int kClusters = 16;
  constexpr NodeCount kNodesPerCluster = 64;
  const Time kNow = sec(60);

  Population population([] {
    PopulationParams params;
    params.napps = 0;  // built below: leases only, no PA/NP mix
    return params;
  }());
  population.machine.clusters.clear();
  for (int c = 0; c < kClusters; ++c) {
    population.machine.clusters.push_back({ClusterId{c}, kNodesPerCluster});
  }
  Rng rng(2026);
  std::int64_t nextId = 0;
  for (int a = 0; a < napps; ++a) {
    population.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* pa = population.sets.back().get();
    population.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* np = population.sets.back().get();
    population.sets.push_back(std::make_unique<RequestSet>());
    RequestSet* pre = population.sets.back().get();
    auto r = std::make_unique<Request>();
    r->id = RequestId{nextId++};
    r->cluster = ClusterId{a % kClusters};
    r->nodes = rng.uniformInt(4, 12);
    // Every 5th lease is open-ended: a congestion floor whose wants alone
    // exceed the cluster everywhere, so the idle share is identically zero
    // and a moved breakpoint never ripples into absent applications' views
    // (the realistic steady state — churn with O(changed) output). The
    // rest end staggered, spreading real Step 2 breakpoints.
    r->duration = a % 5 == 0 ? kTimeInf : sec(600 + 11 * (a % 797));
    r->type = RequestType::kPreemptible;
    r->startedAt = 0;
    r->nodeIds.push_back(
        NodeId{r->cluster, static_cast<std::int32_t>(a / kClusters)});
    pre->add(r.get());
    population.owned.push_back(std::move(r));
    ++population.requestCount;
    AppSchedule app;
    app.app = AppId{a};
    app.preAllocations = pa;
    app.nonPreemptible = np;
    app.preemptible = pre;
    app.epoch = 1;
    population.apps.push_back(std::move(app));
  }

  Scheduler scheduler(population.machine, Scheduler::Config{}, [&] {
    SchedulerOptions options{1};
    options.incremental = incremental;
    return options;
  }());
  RequestSetSnapshot snapshot;

  const auto pass = [&] {
    snapshot.recapture(population.apps);
    scheduler.schedulePass(snapshot, kNow);
    snapshot.writeBack();
  };
  pass();  // cold pass primes the cache outside the measured loop

  Rng churnRng(7);
  const metrics::Snapshot before = metrics::snapshot();
  for (auto _ : state) {
    state.PauseTiming();
    for (auto& app : population.apps) {
      if (churnRng.uniformInt(0, 99) >= churnPct) continue;
      Request* lease = *app.preemptible->begin();
      if (lease->duration == kTimeInf) continue;  // the congestion floor holds
      // Local lease extension: the breakpoint moves, the diff window
      // around it stays narrow.
      lease->duration += sec(churnRng.uniformInt(30, 120));
      if (lease->duration > sec(12000)) lease->duration = sec(600);
      ++app.epoch;
    }
    state.ResumeTiming();
    pass();
  }
  const metrics::Snapshot after = metrics::snapshot();
  state.counters["apps"] = static_cast<double>(napps);
  if (incremental) {
    state.counters["pass_apps_clean"] = static_cast<double>(
        after[metrics::Event::kPassAppsClean] -
        before[metrics::Event::kPassAppsClean]);
    state.counters["pass_apps_dirty"] = static_cast<double>(
        after[metrics::Event::kPassAppsDirty] -
        before[metrics::Event::kPassAppsDirty]);
    state.counters["step2_ranges_reused"] = static_cast<double>(
        after[metrics::Event::kStep2RangesReused] -
        before[metrics::Event::kStep2RangesReused]);
  }
}

BENCHMARK(BM_ScheduleIncremental)
    ->Args({1000, 1, 0})
    ->Args({1000, 1, 1})
    ->Args({10000, 0, 1})
    ->Args({10000, 1, 0})
    ->Args({10000, 1, 1})
    ->Args({10000, 10, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ToView(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 8;
  params.seed = 7;
  Population population(params);
  for (auto _ : state) {
    for (const AppSchedule& app : population.apps) {
      benchmark::DoNotOptimize(Scheduler::toView(*app.nonPreemptible));
    }
  }
}
BENCHMARK(BM_ToView)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_Fit(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 8;
  params.seed = 7;
  Population population(params);
  Scheduler scheduler(Machine::single(4096));
  const View machine = scheduler.machineView();
  for (auto _ : state) {
    for (const AppSchedule& app : population.apps) {
      benchmark::DoNotOptimize(
          Scheduler::fit(*app.nonPreemptible, machine, 0));
    }
  }
}
BENCHMARK(BM_Fit)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

// Steady-state n-ary accumulate over `napps` per-application views. After
// a few warm-up rounds every segment block comes from the calling
// thread's arena free lists; `arena_slow_path` must stay at zero across
// the measured iterations (the CI bench job fails if it moves), which is
// the zero-heap-allocations-in-steady-state acceptance gate.
void BM_ViewAccumulate(benchmark::State& state) {
  PopulationParams params;
  params.napps = static_cast<int>(state.range(0));
  params.chain = 8;
  params.seed = 11;
  Population population(params);
  Scheduler scheduler(population.machine);
  // Schedule once: the per-application availability views it computes are
  // non-empty and breakpoint-rich, so the accumulate below runs a genuine
  // n-ary sweep (toView of a set with nothing started is the empty view,
  // which would short-circuit the whole call).
  scheduler.schedule(population.apps, 0);
  const View base = scheduler.machineView();
  std::vector<const View*> ptrs;
  ptrs.reserve(population.apps.size());
  for (const AppSchedule& app : population.apps) {
    ptrs.push_back(&app.nonPreemptiveView);
  }

  const auto accumulateOnce = [&] {
    View result = base;
    result.accumulate(std::span<const View* const>(ptrs), View::Op::kSubtract,
                      /*clampAtZero=*/true);
    benchmark::DoNotOptimize(result);
  };
  for (int i = 0; i < 4; ++i) accumulateOnce();  // prime the free lists
  const std::uint64_t slowBefore =
      metrics::value(metrics::Event::kArenaSlowPath);
  for (auto _ : state) accumulateOnce();
  state.counters["arena_slow_path"] = static_cast<double>(
      metrics::value(metrics::Event::kArenaSlowPath) - slowBefore);
}
BENCHMARK(BM_ViewAccumulate)
    ->Arg(16)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// Raw cost of one event increment: a single relaxed fetch_add, a few ns.
// Guards the "counters cost nothing measurable" claim — compare against
// BM_ScheduleLargeScale, whose inner pass executes a handful of these per
// application against milliseconds of scheduling work.
void BM_MetricsIncrement(benchmark::State& state) {
  for (auto _ : state) {
    metrics::increment(metrics::Event::kSweepSegmentsMerged);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsIncrement);

}  // namespace
}  // namespace coorm

namespace {

/// COORM_METRICS_OUT=FILE dumps the end-of-run counter totals as a flat
/// JSON object ("name": value), which `tools/bench_report.py --metrics`
/// folds into the committed trajectory and CI gates on.
void dumpMetricsIfRequested() {
  const char* path = std::getenv("COORM_METRICS_OUT");
  if (path == nullptr) return;
  std::ofstream out(path);
  const coorm::metrics::Snapshot snap = coorm::metrics::snapshot();
  out << "{\n";
  bool first = true;
  for (std::size_t i = 0; i < coorm::metrics::kEventCount; ++i) {
    out << (first ? "" : ",\n") << "  \""
        << coorm::metrics::name(static_cast<coorm::metrics::Event>(i))
        << "\": " << snap.events[i];
    first = false;
  }
  for (std::size_t i = 0; i < coorm::metrics::kGaugeCount; ++i) {
    out << (first ? "" : ",\n") << "  \""
        << coorm::metrics::name(static_cast<coorm::metrics::Gauge>(i))
        << "\": " << snap.gauges[i];
    first = false;
  }
  out << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dumpMetricsIfRequested();
  return 0;
}

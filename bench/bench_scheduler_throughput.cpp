// Scheduler throughput (§3.2).
//
// The paper's Python+C++ prototype handled ~500 requests/second on one
// core of a 2009-era CPU, with linear complexity in the number of
// requests. We measure the pure C++ scheduler (Algorithm 4) over synthetic
// request populations of varying size, reporting requests/second and
// verifying the roughly-linear scaling.
#include <benchmark/benchmark.h>

#include <memory>

#include "coorm/common/rng.hpp"
#include "coorm/rms/scheduler.hpp"

namespace coorm {
namespace {

const ClusterId kC{0};

struct Population {
  std::vector<std::unique_ptr<Request>> owned;
  std::vector<std::unique_ptr<RequestSet>> sets;
  std::vector<AppSchedule> apps;
  std::size_t requestCount = 0;

  // A mix mirroring the evaluation: each application has a pre-allocation,
  // a couple of chained NP requests inside it, and a preemptible request.
  explicit Population(int napps, int extraNpPerApp, std::uint64_t seed) {
    Rng rng(seed);
    std::int64_t nextId = 0;
    apps.reserve(static_cast<std::size_t>(napps));
    for (int a = 0; a < napps; ++a) {
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* pa = sets.back().get();
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* np = sets.back().get();
      sets.push_back(std::make_unique<RequestSet>());
      RequestSet* p = sets.back().get();

      auto add = [&](RequestSet* set, NodeCount nodes, Time duration,
                     RequestType type, Relation how,
                     Request* parent) -> Request* {
        auto r = std::make_unique<Request>();
        r->id = RequestId{nextId++};
        r->cluster = kC;
        r->nodes = nodes;
        r->duration = duration;
        r->type = type;
        r->relatedHow = how;
        r->relatedTo = parent;
        set->add(r.get());
        owned.push_back(std::move(r));
        ++requestCount;
        return owned.back().get();
      };

      Request* prealloc = add(pa, rng.uniformInt(4, 64),
                              sec(rng.uniformInt(600, 7200)),
                              RequestType::kPreAllocation, Relation::kFree,
                              nullptr);
      Request* inner =
          add(np, rng.uniformInt(1, prealloc->nodes),
              sec(rng.uniformInt(300, 3600)), RequestType::kNonPreemptible,
              Relation::kCoAlloc, prealloc);
      for (int k = 0; k < extraNpPerApp; ++k) {
        inner = add(np, rng.uniformInt(1, prealloc->nodes),
                    sec(rng.uniformInt(300, 3600)),
                    RequestType::kNonPreemptible, Relation::kNext, inner);
      }
      add(p, rng.uniformInt(1, 32), kTimeInf, RequestType::kPreemptible,
          Relation::kFree, nullptr);

      AppSchedule app;
      app.app = AppId{a};
      app.preAllocations = pa;
      app.nonPreemptible = np;
      app.preemptible = p;
      apps.push_back(std::move(app));
    }
  }
};

void BM_SchedulePass(benchmark::State& state) {
  const int napps = static_cast<int>(state.range(0));
  const int chain = static_cast<int>(state.range(1));
  Population population(napps, chain, 99);
  Scheduler scheduler(Machine::single(4096));
  Time now = 0;
  for (auto _ : state) {
    scheduler.schedule(population.apps, now);
    now += sec(1);
    benchmark::DoNotOptimize(population.apps.front().preemptiveView);
  }
  state.counters["requests"] =
      static_cast<double>(population.requestCount);
  state.counters["requests/s"] = benchmark::Counter(
      static_cast<double>(population.requestCount),
      benchmark::Counter::kIsIterationInvariantRate);
}

BENCHMARK(BM_SchedulePass)
    ->Args({4, 2})
    ->Args({16, 2})
    ->Args({64, 2})
    ->Args({16, 8})
    ->Args({64, 8})
    ->Args({128, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_ToView(benchmark::State& state) {
  Population population(static_cast<int>(state.range(0)), 8, 7);
  for (auto _ : state) {
    for (const AppSchedule& app : population.apps) {
      benchmark::DoNotOptimize(Scheduler::toView(*app.nonPreemptible));
    }
  }
}
BENCHMARK(BM_ToView)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_Fit(benchmark::State& state) {
  Population population(static_cast<int>(state.range(0)), 8, 7);
  Scheduler scheduler(Machine::single(4096));
  const View machine = scheduler.machineView();
  for (auto _ : state) {
    for (const AppSchedule& app : population.apps) {
      benchmark::DoNotOptimize(
          Scheduler::fit(*app.nonPreemptible, machine, 0));
    }
  }
}
BENCHMARK(BM_Fit)->Arg(16)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace coorm

BENCHMARK_MAIN();

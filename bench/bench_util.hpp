// Shared knobs for the figure-reproduction binaries.
//
// Every bench honours two environment variables:
//   COORM_BENCH_SEEDS  — number of random seeds per sweep point (default 3)
//   COORM_BENCH_QUICK  — if set (non-empty), run a reduced, fast
//                        configuration (smaller working sets, fewer steps)
//                        so `for b in build/bench/*; do $b; done` finishes
//                        in minutes. Unset it for paper-scale runs.
#pragma once

#include <cstdlib>
#include <string>

#include "coorm/exp/experiments.hpp"

namespace coorm::bench {

inline int seedCount() {
  if (const char* env = std::getenv("COORM_BENCH_SEEDS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 3;
}

inline bool quick() {
  const char* env = std::getenv("COORM_BENCH_QUICK");
  return env != nullptr && env[0] != '\0';
}

/// Evaluation parameters: paper scale by default, reduced under QUICK.
inline EvalParams evalParams() {
  EvalParams eval;  // paper defaults: Smax = 3.16 TiB, 1000 steps
  if (quick()) {
    eval.steps = 200;
    eval.smaxMiB = kPaperSmaxMiB / 8.0;  // ~400 GiB peak
  }
  return eval;
}

inline const char* scaleLabel() {
  return quick() ? "quick scale (COORM_BENCH_QUICK set)"
                 : "paper scale (set COORM_BENCH_QUICK=1 for a fast run)";
}

}  // namespace coorm::bench

// Ablation: re-scheduling interval (§3.2 / §5.1.3).
//
// The paper sets the interval to 1 s "to obtain a very reactive system".
// We sweep it and measure the AMR end time (update grants wait for the
// next pass) and the PSA waste on the Fig. 9 setup at overcommit 1.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

namespace {

struct Outcome {
  bool finished = false;
  double endTimeSeconds = 0.0;
  double wasteNodeSeconds = 0.0;
};

Outcome runWithInterval(Time interval, std::uint64_t seed,
                        const EvalParams& eval) {
  const SpeedupModel model(paperSpeedupParams());
  Rng rng(seed);
  WorkingSetParams wsParams;
  wsParams.steps = eval.steps;
  const WorkingSetModel wsModel(wsParams);
  const std::vector<double> sizes =
      wsModel.generateSizesMiB(rng, eval.smaxMiB);
  const StaticAnalysis analysis(model, sizes);
  const NodeCount neq =
      analysis.equivalentStatic(eval.targetEfficiency).value_or(100);

  ScenarioConfig cfg;
  cfg.nodes = std::max<NodeCount>(1400, neq);
  if (coorm::bench::quick()) cfg.nodes = std::max<NodeCount>(500, neq);
  cfg.server.reschedInterval = interval;
  cfg.server.violationGrace = std::max(sec(5), 4 * interval);
  Scenario sc(cfg);

  AmrApp::Config amr;
  amr.cluster = sc.cluster();
  amr.model = model;
  amr.sizesMiB = sizes;
  amr.preallocNodes = neq;
  // Large intervals add up to ~2 intervals of grant latency per step.
  amr.walltime = satAdd(secF(3.0 * analysis.staticDuration(neq) + 7200.0),
                        4 * interval * static_cast<Time>(eval.steps));
  AmrApp& nea = sc.addAmr(amr);

  PsaApp::Config psaCfg;
  psaCfg.cluster = sc.cluster();
  psaCfg.taskDuration = eval.psa1TaskDuration;
  PsaApp& psa = sc.addPsa(psaCfg);

  sc.runUntilFinished(nea, satAdd(amr.walltime, amr.walltime));
  return {nea.finished(), toSeconds(nea.endTime()), psa.wasteNodeSeconds()};
}

}  // namespace

int main() {
  std::cout << "=== Ablation: re-scheduling interval ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";
  const EvalParams eval = coorm::bench::evalParams();
  const int seeds = coorm::bench::seedCount();

  TablePrinter table({"interval(s)", "median-AMR-end(s)",
                      "median-PSA-waste(node·s)"});
  for (const Time interval : {msec(100), sec(1), sec(5), sec(30)}) {
    std::vector<double> ends;
    std::vector<double> waste;
    bool allFinished = true;
    for (int s = 0; s < seeds; ++s) {
      const Outcome outcome =
          runWithInterval(interval, 7000 + static_cast<std::uint64_t>(s),
                          eval);
      allFinished = allFinished && outcome.finished;
      ends.push_back(outcome.endTimeSeconds);
      waste.push_back(outcome.wasteNodeSeconds);
    }
    table.addRow({TablePrinter::num(toSeconds(interval), 1),
                  allFinished ? TablePrinter::num(median(ends), 0)
                              : std::string("did-not-finish"),
                  TablePrinter::num(median(waste), 0)});
  }
  table.print(std::cout);
  std::cout << "\nLarger intervals delay update grants (longer AMR runs); "
               "1 s matches the paper's \"very reactive\" setting.\n";
  return 0;
}

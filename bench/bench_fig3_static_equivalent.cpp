// Figure 3: end-time increase when the equivalent static allocation is
// used instead of a dynamic allocation, vs target efficiency (§2.3).
//
// Paper result: the end time increases by at most ~2.5 %, and n_eq exists
// for target efficiencies below 0.8.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 3: equivalent static allocation ===\n";
  const int profiles = coorm::bench::quick() ? 10 : 30;
  const auto points = runFig3(profiles, /*seed=*/7);

  TablePrinter table({"target-eff", "median-incr-%", "max-incr-%",
                      "feasible"});
  double worst = 0.0;
  for (const auto& point : points) {
    table.addRow({TablePrinter::num(point.targetEfficiency, 2),
                  TablePrinter::num(point.medianIncreasePct, 2),
                  TablePrinter::num(point.maxIncreasePct, 2),
                  TablePrinter::integer(point.feasibleProfiles) + "/" +
                      TablePrinter::integer(point.totalProfiles)});
    if (point.targetEfficiency < 0.8) {
      worst = std::max(worst, point.maxIncreasePct);
    }
  }
  table.print(std::cout);
  std::cout << "\nworst increase for e_t < 0.8: "
            << TablePrinter::num(worst, 2)
            << " %  (paper: at most ~2.5 %)\n";
  return 0;
}

// Figure 9: scheduling with spontaneous updates (§5.2).
//
// One non-predictably evolving AMR application plus one malleable PSA
// (dtask = 600 s) on a machine of 1400·overcommit nodes. We sweep the
// overcommit factor and report, as medians over seeds:
//   - AMR used resources when forced static (grows with overcommit),
//   - AMR used resources with dynamic allocation (stays flat),
//   - PSA waste (killed-task node-seconds; grows then saturates at
//     overcommit >= 1).
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 9: spontaneous updates ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";

  const std::vector<double> overcommits =
      coorm::bench::quick()
          ? std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0}
          : std::vector<double>{0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0};

  const auto points = runFig9(overcommits, coorm::bench::seedCount(),
                              /*baseSeed=*/1000, coorm::bench::evalParams());

  TablePrinter table({"overcommit", "AMR-used-static(node·s)",
                      "AMR-used-dynamic(node·s)", "PSA-waste(node·s)"});
  for (const auto& point : points) {
    table.addRow({TablePrinter::num(point.overcommit, 2),
                  TablePrinter::num(point.amrUsedStatic, 0),
                  TablePrinter::num(point.amrUsedDynamic, 0),
                  TablePrinter::num(point.psaWasteDynamic, 0)});
  }
  table.print(std::cout);

  const auto& first = points.front();
  const auto& last = points.back();
  std::cout << "\nPaper checks:\n"
            << "  static  used grows with overcommit:  "
            << TablePrinter::num(last.amrUsedStatic / first.amrUsedStatic, 1)
            << "x across the sweep\n"
            << "  dynamic used stays roughly flat:     "
            << TablePrinter::num(last.amrUsedDynamic / first.amrUsedDynamic,
                                 2)
            << "x across the sweep\n"
            << "  waste << static over-consumption at high overcommit: "
            << TablePrinter::num(
                   last.psaWasteDynamic /
                       (last.amrUsedStatic - last.amrUsedDynamic) * 100.0,
                   1)
            << " %\n";
  return 0;
}

// Companion experiment to the paper's motivation ([1] Hungershöfer, "On
// the combined scheduling of malleable and rigid jobs"): a rigid batch
// workload leaves holes; a malleable PSA filling them raises utilization
// substantially. This is the classic result CooRMv2's preemptible
// requests build on.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/scenario.hpp"
#include "coorm/exp/table.hpp"
#include "coorm/workload/player.hpp"

using namespace coorm;

namespace {

struct Outcome {
  double rigidUtilizationPct = 0.0;
  double combinedUtilizationPct = 0.0;
  double meanWaitSeconds = 0.0;
};

Outcome runOnce(std::uint64_t seed, bool withPsa) {
  ScenarioConfig cfg;
  cfg.nodes = 256;
  Scenario sc(cfg);

  Rng rng(seed);
  SyntheticWorkloadParams params;
  params.jobs = coorm::bench::quick() ? 40 : 150;
  params.maxProcessors = 192;
  params.minRuntime = sec(300);
  params.maxRuntime = hours(3);
  params.meanInterarrivalSeconds = 600.0;
  const Workload workload = generateWorkload(params, rng);

  WorkloadPlayer player(sc.engine(), sc.server(), sc.cluster(), workload);
  PsaApp* psa = nullptr;
  if (withPsa) {
    PsaApp::Config psaCfg;
    psaCfg.cluster = sc.cluster();
    psaCfg.taskDuration = sec(120);
    psa = &sc.addPsa(psaCfg);
  }

  const Time end = sc.runFor(hours(24 * 7));
  const WorkloadStats stats = player.stats(cfg.nodes);

  Outcome outcome;
  const double capacity = 256.0 * toSeconds(end);
  double rigidWork = 0.0;
  for (const JobOutcome& job : player.outcomes()) {
    if (job.completed()) {
      rigidWork += static_cast<double>(job.processors) *
                   toSeconds(job.end - job.start);
    }
  }
  outcome.rigidUtilizationPct = rigidWork / capacity * 100.0;
  double total = sc.metrics().totalAllocatedNodeSeconds();
  if (psa != nullptr) total -= psa->wasteNodeSeconds();
  outcome.combinedUtilizationPct = total / capacity * 100.0;
  outcome.meanWaitSeconds = stats.meanWaitSeconds;
  return outcome;
}

}  // namespace

int main() {
  std::cout << "=== Rigid workload + malleable filling (paper ref [1]) ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";
  const int seeds = coorm::bench::seedCount();

  TablePrinter table({"setup", "rigid-util(%)", "total-util(%)",
                      "mean-wait(s)"});
  for (const bool withPsa : {false, true}) {
    std::vector<double> rigidUtil;
    std::vector<double> totalUtil;
    std::vector<double> waits;
    for (int s = 0; s < seeds; ++s) {
      const Outcome outcome =
          runOnce(9000 + static_cast<std::uint64_t>(s), withPsa);
      rigidUtil.push_back(outcome.rigidUtilizationPct);
      totalUtil.push_back(outcome.combinedUtilizationPct);
      waits.push_back(outcome.meanWaitSeconds);
    }
    table.addRow({withPsa ? "rigid + PSA" : "rigid only",
                  TablePrinter::num(median(rigidUtil), 1),
                  TablePrinter::num(median(totalUtil), 1),
                  TablePrinter::num(median(waits), 0)});
  }
  table.print(std::cout);
  std::cout << "\nMalleable filling raises utilization without delaying the "
               "rigid jobs (preemptible requests are invisible to the "
               "non-preemptive schedule).\n";
  return 0;
}

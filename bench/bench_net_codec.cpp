// BM_WireCodec: encode + decode throughput of the wire protocol's
// heaviest frame, the views push, at 64–4096 breakpoints per profile
// (bench arg). Each iteration encodes one ViewsMsg into a reused buffer,
// reassembles it through FrameBuffer (the daemon's read path) and decodes
// it back, so the number is the full serialize/deserialize round trip per
// push — bytes/s tracks the allocation-light goal.
//
// BM_WireCodecSmall covers the chatty small frames (request + ack), the
// per-message floor of daemon throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "coorm/common/check.hpp"
#include "coorm/net/wire.hpp"

namespace coorm::net {
namespace {

View viewWithBreakpoints(int breakpoints, NodeCount top) {
  std::vector<StepFunction::Segment> segments;
  segments.reserve(static_cast<std::size_t>(breakpoints));
  for (int i = 0; i < breakpoints; ++i) {
    segments.push_back({sec(10) * i, top - (i % 7)});
  }
  View view;
  view.setCap(ClusterId{0}, StepFunction::fromSegments(std::move(segments)));
  return view;
}

void BM_WireCodec(benchmark::State& state) {
  const int breakpoints = static_cast<int>(state.range(0));
  ViewsMsg message{viewWithBreakpoints(breakpoints, 4096),
                   viewWithBreakpoints(breakpoints, 1024)};

  std::vector<std::uint8_t> buffer;
  std::size_t frameBytes = 0;
  for (auto _ : state) {
    buffer.clear();
    encode(buffer, message);
    frameBytes = buffer.size();

    FrameBuffer frames;
    frames.append(buffer);
    FrameView frame;
    COORM_CHECK(frames.next(frame) == FrameBuffer::Next::kFrame);
    ViewsMsg decoded;
    COORM_CHECK(decode(frame.payload, decoded));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frameBytes));
  state.counters["frame_bytes"] = static_cast<double>(frameBytes);
  state.counters["pushes/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireCodec)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_WireCodecSmall(benchmark::State& state) {
  RequestMsg request;
  request.cookie = 7;
  request.spec.nodes = 16;
  request.spec.duration = sec(600);

  std::vector<std::uint8_t> buffer;
  for (auto _ : state) {
    buffer.clear();
    encode(buffer, request);
    encode(buffer, RequestAckMsg{request.cookie, RequestId{42}});

    FrameBuffer frames;
    frames.append(buffer);
    FrameView frame;
    RequestMsg decodedRequest;
    RequestAckMsg decodedAck;
    COORM_CHECK(frames.next(frame) == FrameBuffer::Next::kFrame);
    COORM_CHECK(decode(frame.payload, decodedRequest));
    COORM_CHECK(frames.next(frame) == FrameBuffer::Next::kFrame);
    COORM_CHECK(decode(frame.payload, decodedAck));
    benchmark::DoNotOptimize(decodedAck);
  }
  state.counters["messages/s"] =
      benchmark::Counter(2.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireCodecSmall);

}  // namespace
}  // namespace coorm::net

BENCHMARK_MAIN();

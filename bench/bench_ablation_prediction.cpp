// Extension (paper §5.3, footnote 2): announcing a linearly-predicted
// node-count instead of the current one.
//
// The paper notes that an application could extrapolate its working set
// and announce the predicted future need, at the cost of extra resource
// usage, and leaves it out of scope. We implement it and measure both
// sides of that trade-off.
#include <iostream>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Extension: linear prediction in announced updates ===\n";
  std::cout << coorm::bench::scaleLabel() << "\n\n";
  const EvalParams eval = coorm::bench::evalParams();
  const int seeds = coorm::bench::seedCount();
  const std::vector<Time> announces{sec(300), sec(600)};

  const auto plain = runFig10(announces, seeds, 4000, eval, false);
  const auto predicted = runFig10(announces, seeds, 4000, eval, true);

  TablePrinter table({"announce(s)", "end-incr-plain(%)",
                      "end-incr-predicted(%)", "used-plain(%)",
                      "used-predicted(%)"});
  for (std::size_t i = 0; i < plain.size(); ++i) {
    table.addRow(
        {TablePrinter::num(toSeconds(plain[i].announceInterval), 0),
         TablePrinter::num(plain[i].endTimeIncreasePct, 2),
         TablePrinter::num(predicted[i].endTimeIncreasePct, 2),
         TablePrinter::num(plain[i].usedResourcesPct, 2),
         TablePrinter::num(predicted[i].usedResourcesPct, 2)});
  }
  table.print(std::cout);
  std::cout << "\nMeasured outcome: on the paper's *noisy* profiles, naive "
               "per-step linear extrapolation overshoots in both "
               "directions (noise flips the slope), so announced "
               "node-counts are frequently wrong and the end time gets "
               "*worse*, not better — evidence for the paper's decision "
               "(footnote 2) to leave prediction out of scope.\n";
  return 0;
}

// Figure 1: examples of AMR working-set evolutions produced by the
// acceleration-deceleration model (§2.1).
//
// The paper's figure plots several normalized 1000-step profiles; we print
// a down-sampled table of three profiles plus the statistical features the
// paper extracted from published AMR runs (mostly increasing, sudden
// increases, constancy regions, noise).
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "coorm/exp/table.hpp"

using namespace coorm;

int main() {
  std::cout << "=== Figure 1: AMR working-set evolution samples ===\n";
  const Fig1Result result = runFig1(3, /*seed=*/2011);

  TablePrinter table({"step", "profile0", "profile1", "profile2"});
  for (std::size_t step = 0; step < 1000; step += 50) {
    table.addRow({TablePrinter::integer(static_cast<long long>(step)),
                  TablePrinter::num(result.profiles[0][step], 1),
                  TablePrinter::num(result.profiles[1][step], 1),
                  TablePrinter::num(result.profiles[2][step], 1)});
  }
  table.print(std::cout);

  std::cout << "\nProfile features (paper: mostly increasing, sudden "
               "increases, constancy, noise):\n";
  TablePrinter stats({"profile", "peak", "final", "mean", "increasing-win%"});
  for (std::size_t p = 0; p < result.profiles.size(); ++p) {
    const auto& profile = result.profiles[p];
    const double peak = *std::max_element(profile.begin(), profile.end());
    const double mean =
        std::accumulate(profile.begin(), profile.end(), 0.0) /
        static_cast<double>(profile.size());
    int increasing = 0;
    int windows = 0;
    for (std::size_t i = 50; i + 50 <= profile.size(); i += 50) {
      ++windows;
      if (profile[i + 49] >= profile[i - 50]) ++increasing;
    }
    stats.addRow({TablePrinter::integer(static_cast<long long>(p)),
                  TablePrinter::num(peak, 1),
                  TablePrinter::num(profile.back(), 1),
                  TablePrinter::num(mean, 1),
                  TablePrinter::num(100.0 * increasing / windows, 0)});
  }
  stats.print(std::cout);
  std::cout << "\nPaper check: profiles normalized to max 1000 over 1000 "
               "steps, compatible with [11,12].\n";
  return 0;
}
